"""OBS rules: observability conventions that keep artifacts greppable.

``docs/observability.md`` documents every instrument by its dotted name;
reports and CI assertions grep for those names. That only works while
names are statically visible at the call site.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.rules import register
from repro.lint.rules.base import Rule, first_argument

#: Registry lookup methods whose first argument is an instrument name.
INSTRUMENT_METHODS = frozenset({"counter", "gauge", "histogram"})

#: The registry itself composes names from prefixes; it is the one place
#: allowed to pass computed names through.
EXEMPT_FILES = ("obs/registry.py",)

#: A full literal name: lowercase dot.separated segments.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

#: The literal head of an f-string name: dotted segments ending in a dot,
#: so the static prefix (msg.send., proc., fault.) stays greppable even
#: when the tail is dynamic (message type names, fault kinds).
_HEAD_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*\.$")


def _name_argument_ok(arg: ast.expr) -> bool:
    if isinstance(arg, ast.Constant):
        return isinstance(arg.value, str) and bool(_NAME_RE.match(arg.value))
    if isinstance(arg, ast.JoinedStr):
        values = arg.values
        return (
            bool(values)
            and isinstance(values[0], ast.Constant)
            and isinstance(values[0].value, str)
            and bool(_HEAD_RE.match(values[0].value))
        )
    return False


#: The profiler itself defines/aliases ``enter``/``exit``; only it may
#: treat labels dynamically (the kernel's event frames go through the
#: ``enter_event`` alias precisely so this rule doesn't apply to them).
PROFILER_EXEMPT_FILES = ("obs/prof/profiler.py",)


def _profiler_receiver(func: ast.expr) -> bool:
    """True when a call's receiver looks like a profiler object.

    Matches ``profiler.enter(...)``, ``prof.enter(...)``,
    ``self.profiler.enter(...)`` — the last dotted component of the
    receiver must contain ``prof``.
    """
    if not isinstance(func, ast.Attribute):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Name):
        name = receiver.id
    elif isinstance(receiver, ast.Attribute):
        name = receiver.attr
    else:
        return False
    return "prof" in name.lower()


def _shallow_statements(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a scope's nodes without descending into nested scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # a nested scope balances (and labels) on its own
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _prof_scope_calls(body: list[ast.stmt]) -> tuple[list[ast.Call], list[ast.Call]]:
    """``(enter_calls, exit_calls)`` on profiler receivers in one scope."""
    enters: list[ast.Call] = []
    exits: list[ast.Call] = []
    for node in _shallow_statements(body):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or not _profiler_receiver(func):
            continue
        if func.attr == "enter":
            enters.append(node)
        elif func.attr == "exit":
            exits.append(node)
    return enters, exits


@register
class ProfilerScopeConvention(Rule):
    """OBS002: profiler scope labels are literals; enter/exit pair up."""

    rule_id = "OBS002"
    summary = "profiler scope label must be a literal and enter/exit balanced"
    rationale = (
        "Flamegraph frames are documentation: a computed label cannot be "
        "grepped or listed in docs/performance.md, and an unbalanced "
        "enter/exit corrupts every enclosing frame's self-time. Each "
        "function (and the module top level) must open exactly as many "
        "profiler scopes as it closes — use try/finally."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel.endswith(PROFILER_EXEMPT_FILES):
            return
        scopes: list[list[ast.stmt]] = [ctx.tree.body]
        for node in ctx.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        for body in scopes:
            enters, exits = _prof_scope_calls(body)
            for call in enters:
                arg = first_argument(call, keyword="label")
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and _NAME_RE.match(arg.value)
                ):
                    continue
                yield self.finding(
                    ctx,
                    arg if arg is not None else call,
                    "profiler scope label passed to .enter() must be a "
                    "lowercase dot.separated string literal",
                )
            if len(enters) != len(exits):
                anchor = (enters or exits)[0]
                yield self.finding(
                    ctx,
                    anchor,
                    f"unbalanced profiler scopes in this function: "
                    f"{len(enters)} .enter() vs {len(exits)} .exit() — "
                    "pair them with try/finally in the same scope",
                )


@register
class MetricNameConvention(Rule):
    """OBS001: instrument names must be statically greppable literals."""

    rule_id = "OBS001"
    summary = "metric name is not a dot.separated literal (or literal-headed f-string)"
    rationale = (
        "docs/observability.md and the report layer's conventions "
        "(msg.send.<Type>, proc.<pid>.<rest>) are contracts: a name that "
        "is not a literal — or an f-string without a literal dotted head — "
        "cannot be grepped, documented, or asserted on in CI."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel.endswith(EXEMPT_FILES):
            return
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in INSTRUMENT_METHODS
            ):
                continue
            arg = first_argument(node, keyword="name")
            if arg is None:
                continue
            if not _name_argument_ok(arg):
                yield self.finding(
                    ctx,
                    arg,
                    f"instrument name passed to .{func.attr}() must be a "
                    "lowercase dot.separated string literal (f-strings need "
                    "a literal dotted head like f\"msg.send.{...}\")",
                )
