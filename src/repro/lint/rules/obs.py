"""OBS rules: observability conventions that keep artifacts greppable.

``docs/observability.md`` documents every instrument by its dotted name;
reports and CI assertions grep for those names. That only works while
names are statically visible at the call site.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.rules import register
from repro.lint.rules.base import Rule, first_argument

#: Registry lookup methods whose first argument is an instrument name.
INSTRUMENT_METHODS = frozenset({"counter", "gauge", "histogram"})

#: The registry itself composes names from prefixes; it is the one place
#: allowed to pass computed names through.
EXEMPT_FILES = ("obs/registry.py",)

#: A full literal name: lowercase dot.separated segments.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

#: The literal head of an f-string name: dotted segments ending in a dot,
#: so the static prefix (msg.send., proc., fault.) stays greppable even
#: when the tail is dynamic (message type names, fault kinds).
_HEAD_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*\.$")


def _name_argument_ok(arg: ast.expr) -> bool:
    if isinstance(arg, ast.Constant):
        return isinstance(arg.value, str) and bool(_NAME_RE.match(arg.value))
    if isinstance(arg, ast.JoinedStr):
        values = arg.values
        return (
            bool(values)
            and isinstance(values[0], ast.Constant)
            and isinstance(values[0].value, str)
            and bool(_HEAD_RE.match(values[0].value))
        )
    return False


@register
class MetricNameConvention(Rule):
    """OBS001: instrument names must be statically greppable literals."""

    rule_id = "OBS001"
    summary = "metric name is not a dot.separated literal (or literal-headed f-string)"
    rationale = (
        "docs/observability.md and the report layer's conventions "
        "(msg.send.<Type>, proc.<pid>.<rest>) are contracts: a name that "
        "is not a literal — or an f-string without a literal dotted head — "
        "cannot be grepped, documented, or asserted on in CI."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel.endswith(EXEMPT_FILES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in INSTRUMENT_METHODS
            ):
                continue
            arg = first_argument(node, keyword="name")
            if arg is None:
                continue
            if not _name_argument_ok(arg):
                yield self.finding(
                    ctx,
                    arg,
                    f"instrument name passed to .{func.attr}() must be a "
                    "lowercase dot.separated string literal (f-strings need "
                    "a literal dotted head like f\"msg.send.{...}\")",
                )
