"""DET rules: sources of nondeterminism that must never reach the sim.

The simulator's contract (DESIGN.md, ``docs/robustness.md``) is that one
seed fully determines every artifact: schedules, metrics, traces, chaos
reports. These rules catch the three ways that contract historically
breaks — ambient entropy, hash-ordered iteration, and unsorted JSON.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import DETERMINISTIC_LAYERS, FileContext
from repro.lint.findings import Finding
from repro.lint.rules import register
from repro.lint.rules.base import (
    Rule,
    call_target,
    has_double_star,
    keyword_value,
)

#: Fully-qualified callables that read wall clocks or process entropy.
AMBIENT_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Module prefixes that are nondeterministic wholesale.
AMBIENT_PREFIXES = ("secrets.",)

#: Files allowed to construct the world's root RNG without a seed literal
#: (they *are* the seed boundary).
UNSEEDED_RNG_BOUNDARY = ("sim/world.py", "sim/kernel.py")

#: Writers exempt from DET004 — none today; listed for symmetry with the
#: other allowlists so the exemption mechanism is in one obvious place.
JSON_WRITER_EXEMPT: tuple[str, ...] = ()


def _in_deterministic_layer(ctx: FileContext) -> bool:
    return ctx.layer in DETERMINISTIC_LAYERS


@register
class AmbientNondeterminism(Rule):
    """DET001: ambient entropy/clock calls inside deterministic layers."""

    rule_id = "DET001"
    summary = "ambient RNG/clock call in a deterministic layer"
    rationale = (
        "Simulation layers (sim/, core/, net/, chaos/, election/, cluster/) "
        "must draw randomness and time from the injected world (kernel RNG "
        "streams, virtual clock). One ambient call desynchronizes replicas "
        "and breaks seed-replayability — the exact failure mode §3.3 exists "
        "to prevent."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_deterministic_layer(ctx):
            return
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            target = call_target(ctx, node)
            if target is None:
                continue
            ambient = (
                target in AMBIENT_CALLS
                or target.startswith(AMBIENT_PREFIXES)
                or (
                    target.startswith("random.")
                    and target != "random.Random"
                )
            )
            if ambient:
                yield self.finding(
                    ctx,
                    node,
                    f"ambient nondeterministic call {target}() in layer "
                    f"'{ctx.layer}'; inject an RNG/clock from the world instead",
                )


@register
class UnseededRng(Rule):
    """DET002: ``random.Random()`` constructed without a seed."""

    rule_id = "DET002"
    summary = "unseeded random.Random() outside the world boundary"
    rationale = (
        "Every RNG stream is derived from the run seed (e.g. "
        "Random(f'{seed}/link/{src}->{dst}')); an unseeded instance falls "
        "back to OS entropy and silently forks the simulation from its seed."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel.endswith(UNSEEDED_RNG_BOUNDARY):
            return
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            if call_target(ctx, node) != "random.Random":
                continue
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "random.Random() without a seed draws OS entropy; derive "
                    "the stream from the run seed (Random(f'{seed}/...'))",
                )


def _is_set_like(node: ast.expr) -> bool:
    """Conservatively: does this expression certainly produce a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_like(node.left) or _is_set_like(node.right)
    if isinstance(node, ast.IfExp):
        return _is_set_like(node.body) or _is_set_like(node.orelse)
    return False


@register
class HashOrderIteration(Rule):
    """DET003: iterating a set expression without ``sorted(...)``."""

    rule_id = "DET003"
    summary = "iteration over a set without sorted()"
    rationale = (
        "Set iteration order depends on PYTHONHASHSEED. When the loop body "
        "emits messages, builds insertion-ordered dicts, or writes output, "
        "that order leaks into artifacts that must be byte-identical; "
        "wrap the expression in sorted(...)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        iterables: list[ast.expr] = []
        for node in ctx.walk():
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(generator.iter for generator in node.generators)
        for expr in iterables:
            if _is_set_like(expr):
                yield self.finding(
                    ctx,
                    expr,
                    "iteration order of a set is hash-seed dependent; wrap "
                    "the iterable in sorted(...)",
                )


@register
class UnsortedJson(Rule):
    """DET004: ``json.dump(s)`` without ``sort_keys=True``."""

    rule_id = "DET004"
    summary = "json.dump/json.dumps without sort_keys=True"
    rationale = (
        "Exports (timelines, chaos summaries, chrome traces, lint reports) "
        "are diffed byte-for-byte in CI and across PYTHONHASHSEED values; "
        "dict key order must come from sort_keys, never from insertion "
        "history."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel.endswith(JSON_WRITER_EXEMPT):
            return
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            target = call_target(ctx, node)
            if target not in {"json.dump", "json.dumps"}:
                continue
            if has_double_star(node):
                continue  # forwarded kwargs: cannot see sort_keys statically
            value = keyword_value(node, "sort_keys")
            if value is None or (isinstance(value, ast.Constant) and not value.value):
                yield self.finding(
                    ctx,
                    node,
                    f"{target}(...) without sort_keys=True makes the output "
                    "depend on dict insertion order",
                )
