"""The rule registry: rules are plugins registered at import time.

A rule module defines :class:`~repro.lint.rules.base.Rule` subclasses and
decorates them with :func:`register`; importing this package pulls in
every built-in rule module, so ``all_rules()`` is the complete catalogue.
Adding a rule is: write the class, decorate it, list its module here.
"""

from __future__ import annotations

RULE_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    rule_id = getattr(cls, "rule_id", "")
    if not rule_id:
        raise ValueError(f"rule class {cls.__name__} has no rule_id")
    if rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    RULE_REGISTRY[rule_id] = cls
    return cls


def all_rules() -> list:
    """One instance of every registered rule, ordered by rule id."""
    return [RULE_REGISTRY[rule_id]() for rule_id in sorted(RULE_REGISTRY)]


# Built-in rule modules (imported for their @register side effect; the
# import must run after register() is defined, hence the placement).
from repro.lint.rules import determinism, layering, messages, obs  # noqa: E402,F401

__all__ = ["RULE_REGISTRY", "all_rules", "register"]
