"""Rule base class and the shared AST helpers rules are built from."""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity


class Rule:
    """One lint rule: a stable id, a severity, and a per-file check.

    Subclasses set the class attributes and implement :meth:`check` as a
    generator of findings. ``rationale`` ties the rule to the design or
    paper invariant it protects — it feeds ``repro lint --list-rules`` and
    the rule table in ``docs/static-analysis.md``.
    """

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def call_target(ctx: FileContext, node: ast.Call) -> str | None:
    """Resolved dotted name of a call's callee, or ``None``."""
    return ctx.resolve(node.func)


def keyword_value(node: ast.Call, name: str) -> ast.expr | None:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def has_double_star(node: ast.Call) -> bool:
    return any(keyword.arg is None for keyword in node.keywords)


def is_const_true(node: ast.expr | None) -> bool:
    return isinstance(node, ast.Constant) and node.value is True


def first_argument(node: ast.Call, keyword: str | None = None) -> ast.expr | None:
    """First positional argument, falling back to a named keyword."""
    if node.args and not isinstance(node.args[0], ast.Starred):
        return node.args[0]
    if keyword is not None:
        return keyword_value(node, keyword)
    return None
