"""PROTO rules: architectural layering of the protocol core.

``core/`` holds pure protocol logic driven entirely through the injected
:class:`~repro.sim.process.Process` runtime. The moment it imports a
transport or touches real I/O, the same protocol code can no longer run
identically under the simulator, the local-thread runtime and TCP — and
the simulator's determinism guarantee stops covering the code that ships.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.rules import register
from repro.lint.rules.base import Rule

#: Layers that must stay transport-agnostic and I/O-free.
PURE_LAYERS = frozenset({"core", "election"})

#: Module roots banned inside pure layers.
BANNED_MODULES = (
    "repro.transport",
    "socket",
    "asyncio",
    "threading",
    "selectors",
    "subprocess",
)

#: Builtins that perform direct I/O.
BANNED_BUILTINS = frozenset({"open", "print", "input"})


@register
class CoreLayering(Rule):
    """PROTO001: core/ must not import transports or perform I/O."""

    rule_id = "PROTO001"
    summary = "transport import or direct I/O in a pure protocol layer"
    rationale = (
        "core/ and election/ run under three interchangeable runtimes "
        "(sim kernel, local threads, TCP). Importing repro.transport, "
        "socket-level modules, or calling open()/print() ties the protocol "
        "to one runtime and punches a hole in the determinism contract."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.layer not in PURE_LAYERS:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in BANNED_BUILTINS
                    and node.func.id not in ctx.imports
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"direct I/O call {node.func.id}() in layer "
                        f"'{ctx.layer}'; protocol code reports through the "
                        "injected runtime (metrics, traces, return values)",
                    )

    def _check_import(
        self, ctx: FileContext, node: ast.Import | ast.ImportFrom
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        else:
            base = node.module or ""
            modules = [base] if base else []
        for module in modules:
            if any(
                module == banned or module.startswith(banned + ".")
                for banned in BANNED_MODULES
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"layer '{ctx.layer}' imports {module}; protocol logic "
                    "must stay transport-agnostic (inject a runtime instead)",
                )
