"""PROTO rules: architectural layering of the protocol core.

``core/`` holds pure protocol logic driven entirely through the injected
:class:`~repro.sim.process.Process` runtime. The moment it imports a
transport or touches real I/O, the same protocol code can no longer run
identically under the simulator, the local-thread runtime and TCP — and
the simulator's determinism guarantee stops covering the code that ships.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.rules import register
from repro.lint.rules.base import Rule

#: Layers that must stay transport-agnostic and I/O-free.
PURE_LAYERS = frozenset({"core", "election"})

#: Layers allowed to touch the legacy ``Process.stable`` dict directly:
#: the storage subsystem itself, and the sim runtime that defines the dict
#: (plain test processes without a StableStore still use it).
STORAGE_EXEMPT_LAYERS = frozenset({"storage", "sim"})

#: dict methods that mutate in place.
DICT_MUTATORS = frozenset({"update", "pop", "clear", "setdefault", "popitem"})

#: Module roots banned inside pure layers.
BANNED_MODULES = (
    "repro.transport",
    "socket",
    "asyncio",
    "threading",
    "selectors",
    "subprocess",
)

#: Builtins that perform direct I/O.
BANNED_BUILTINS = frozenset({"open", "print", "input"})


@register
class CoreLayering(Rule):
    """PROTO001: core/ must not import transports or perform I/O."""

    rule_id = "PROTO001"
    summary = "transport import or direct I/O in a pure protocol layer"
    rationale = (
        "core/ and election/ run under three interchangeable runtimes "
        "(sim kernel, local threads, TCP). Importing repro.transport, "
        "socket-level modules, or calling open()/print() ties the protocol "
        "to one runtime and punches a hole in the determinism contract."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.layer not in PURE_LAYERS:
            return
        for node in ctx.walk():
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in BANNED_BUILTINS
                    and node.func.id not in ctx.imports
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"direct I/O call {node.func.id}() in layer "
                        f"'{ctx.layer}'; protocol code reports through the "
                        "injected runtime (metrics, traces, return values)",
                    )

    def _check_import(
        self, ctx: FileContext, node: ast.Import | ast.ImportFrom
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        else:
            base = node.module or ""
            modules = [base] if base else []
        for module in modules:
            if any(
                module == banned or module.startswith(banned + ".")
                for banned in BANNED_MODULES
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"layer '{ctx.layer}' imports {module}; protocol logic "
                    "must stay transport-agnostic (inject a runtime instead)",
                )


def _is_stable_attr(node: ast.AST) -> bool:
    """True for any ``<expr>.stable`` attribute access."""
    return isinstance(node, ast.Attribute) and node.attr == "stable"


@register
class StableStoreBypass(Rule):
    """PROTO002: crash-surviving state goes through repro.storage."""

    rule_id = "PROTO002"
    summary = "direct mutation of crash-surviving state outside repro.storage"
    rationale = (
        "Durability is modeled by repro.storage.StableStore: appends go "
        "through a CRC-framed WAL and become durable only after an fsync "
        "barrier. Writing the legacy Process.stable dict directly — or "
        "rebinding a replica's .store to an existing object — bypasses "
        "that boundary: the state then survives crashes it should have "
        "lost, and the storage nemeses (torn writes, lying fsyncs) can "
        "no longer reach it."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.layer in STORAGE_EXEMPT_LAYERS:
            return
        for node in ctx.walk():
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._check_target(ctx, target, node)
            elif isinstance(node, ast.AugAssign):
                yield from self._check_target(ctx, node.target, node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and _is_stable_attr(
                        target.value
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            "del on a .stable entry bypasses the storage "
                            "API; durable state is truncated via "
                            "checkpoints, not dict surgery",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in DICT_MUTATORS
                    and _is_stable_attr(func.value)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f".stable.{func.attr}() mutates crash-surviving "
                        "state in place; append through "
                        "repro.storage.StableStore so the write crosses "
                        "the modeled durability boundary",
                    )

    def _check_target(
        self, ctx: FileContext, target: ast.AST, node: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Subscript) and _is_stable_attr(target.value):
            yield self.finding(
                ctx,
                node,
                "assignment into .stable bypasses the WAL; durable state "
                "must be appended through repro.storage.StableStore "
                "(accept/choose/record_promise/record_round)",
            )
        elif _is_stable_attr(target):
            yield self.finding(
                ctx,
                node,
                "rebinding .stable replaces crash-surviving state "
                "wholesale; only the sim runtime may initialize it",
            )
        elif isinstance(target, ast.Attribute) and target.attr == "store":
            # Constructing a fresh store object is how owners initialize
            # themselves; aliasing or swapping in an *existing* object is
            # the bypass this rule exists for.
            value = getattr(node, "value", None)
            if isinstance(value, ast.Call):
                return
            yield self.finding(
                ctx,
                node,
                "rebinding .store to an existing object swaps a replica's "
                "stable storage out from under the durability model; "
                "construct a StableStore or go through its API",
            )
