"""Parallel experiment runner: shard independent simulation runs across
worker processes with deterministic result merging.

The package is host-side tooling — nothing here runs *inside* a
simulation. Each unit of work is a :class:`~repro.parallel.spec.RunSpec`
(a task name plus JSON-ready params, **including the seed**: workers never
derive seeds from ambient state, so the schedule of any run is a pure
function of its spec no matter which worker executes it or in what order).

Layers:

* :mod:`repro.parallel.spec` — run specs and grid builders (chaos sweeps,
  figure reproductions, the calibration set).
* :mod:`repro.parallel.tasks` — the picklable task functions workers run.
* :mod:`repro.parallel.runner` — the work-stealing multiprocess pool with
  per-run timeout, retry, and crash recovery.
* :mod:`repro.parallel.merge` — deterministic merging: results keyed and
  sorted by run spec, byte-identical regardless of worker count or
  completion order; wall-clock lives in a separate timing section.
"""

from repro.parallel.merge import (
    canonical_json,
    merge_records,
    merge_sweep,
    timing_summary,
)
from repro.parallel.runner import RunRecord, SweepOptions, pmap, run_sweep
from repro.parallel.spec import (
    RunSpec,
    calibration_grid,
    chaos_grid,
    figures_grid,
    selftest_grid,
)

__all__ = [
    "RunRecord",
    "RunSpec",
    "SweepOptions",
    "calibration_grid",
    "canonical_json",
    "chaos_grid",
    "figures_grid",
    "merge_records",
    "merge_sweep",
    "pmap",
    "run_sweep",
    "selftest_grid",
    "timing_summary",
]
