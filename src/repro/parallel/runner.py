"""Work-stealing multiprocess sweep runner.

Architecture: the parent owns the pending queue and each worker owns a
private duplex pipe. Idle workers are handed the next pending spec as soon
as they report done — i.e. workers *pull* work at their own pace (the
work-stealing property: a worker that lands short runs processes more of
the queue; nobody waits on a static pre-partition). Results come back on
one shared queue.

Task assignment over private pipes (instead of a shared task queue) is
what makes crash recovery safe: killing a worker cannot corrupt shared
queue state, and the parent knows exactly which spec the dead worker held,
so that spec — and only that spec — is retried on a fresh worker.

Failure model, per run:

* task raises → error record (deterministic failures retry identically,
  so exceptions are not retried).
* worker dies (crash, OOM-kill) mid-run → respawn + retry, up to
  ``retries`` times, then an error record.
* run exceeds ``timeout`` wall seconds → worker killed, respawn + retry.

``workers <= 1`` executes inline through the same dispatch path — no
subprocesses, same records — which is both the debugging mode and the
baseline the speedup acceptance test compares against.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass, field
from queue import Empty
from typing import Any

from repro.errors import ConfigError
from repro.parallel.spec import RunSpec, validate_specs
from repro.parallel.tasks import run_task

#: Parent poll interval (seconds) while waiting for worker results.
_POLL = 0.02

#: Grace given to workers to exit after the shutdown sentinel.
_JOIN_GRACE = 2.0


@dataclass(frozen=True)
class SweepOptions:
    """Execution knobs for one sweep (orthogonal to what is being run)."""

    workers: int = 1
    #: Per-run wall-clock budget in seconds; None = unlimited.
    timeout: float | None = None
    #: Extra attempts after a worker death or timeout (not after a clean
    #: task exception — those are deterministic and would fail again).
    retries: int = 1
    #: Multiprocessing start method; "fork" shares the warm parent image
    #: (fast start), "spawn" is the portable fallback.
    start_method: str = "fork"

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigError(f"workers must be >= 0, got {self.workers}")
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(f"timeout must be positive, got {self.timeout}")


@dataclass
class RunRecord:
    """Outcome of one spec: the deterministic result plus host-side facts.

    ``result``/``error`` are deterministic (functions of the spec alone);
    ``wall``, ``worker`` and ``attempts`` are host-dependent and are kept
    out of the merged results section (see :mod:`repro.parallel.merge`).
    """

    spec: RunSpec
    result: dict[str, Any] | None = None
    error: str | None = None
    attempts: int = 1
    wall: float = 0.0
    worker: int = -1

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """All records of one sweep plus total wall-clock."""

    records: list[RunRecord]
    wall: float
    workers: int

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records)

    def failed(self) -> list[RunRecord]:
        return [r for r in self.records if not r.ok]


# ------------------------------------------------------------------- workers
def _worker_main(conn: Any, results: Any, worker_id: int) -> None:
    """Worker loop: receive a spec, run it, report; ``None`` ends the loop.

    Exceptions are converted to error payloads here so a failing task does
    not take the worker down — only the hard failures the parent watches
    for (kill, crash) do.
    """
    while True:
        spec = conn.recv()
        if spec is None:
            break
        start = time.perf_counter()
        try:
            result = run_task(spec.task, spec.params)
            payload = {"ok": True, "result": result}
        except BaseException as exc:  # noqa: BLE001 - workers must survive
            payload = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        payload["wall"] = time.perf_counter() - start
        results.put((worker_id, spec.key, payload))


@dataclass
class _Worker:
    """Parent-side view of one worker process."""

    process: Any
    conn: Any
    current: RunSpec | None = None
    started: float = 0.0
    runs: int = field(default=0)

    @property
    def idle(self) -> bool:
        return self.current is None


# -------------------------------------------------------------------- runner
def run_sweep(
    specs: Sequence[RunSpec], options: SweepOptions | None = None
) -> SweepResult:
    """Execute every spec and return one record per spec (spec order)."""
    options = options or SweepOptions()
    specs = list(specs)
    validate_specs(specs)
    start = time.perf_counter()
    if options.workers <= 1 or len(specs) <= 1:
        records = _run_serial(specs, options)
    else:
        records = _run_parallel(specs, options)
    by_key = {record.spec.key: record for record in records}
    ordered = [by_key[spec.key] for spec in specs]
    return SweepResult(
        records=ordered,
        wall=time.perf_counter() - start,
        workers=max(1, options.workers),
    )


def _run_serial(specs: Sequence[RunSpec], options: SweepOptions) -> list[RunRecord]:
    records = []
    for spec in specs:
        run_start = time.perf_counter()
        try:
            result = run_task(spec.task, spec.params)
            record = RunRecord(spec=spec, result=result, worker=0)
        except Exception as exc:  # noqa: BLE001 - mirror the worker contract
            record = RunRecord(
                spec=spec, error=f"{type(exc).__name__}: {exc}", worker=0
            )
        record.wall = time.perf_counter() - run_start
        records.append(record)
    return records


def _run_parallel(specs: Sequence[RunSpec], options: SweepOptions) -> list[RunRecord]:
    ctx = _context(options.start_method)
    results_queue = ctx.Queue()
    pending: deque[RunSpec] = deque(specs)
    spec_by_key = {spec.key: spec for spec in specs}
    attempts: dict[str, int] = {spec.key: 0 for spec in specs}
    records: dict[str, RunRecord] = {}
    n_workers = min(options.workers, len(specs))
    next_worker_id = 0
    workers: dict[int, _Worker] = {}

    def spawn() -> None:
        nonlocal next_worker_id
        worker_id = next_worker_id
        next_worker_id += 1
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, results_queue, worker_id),
            daemon=True,
            name=f"repro-sweep-{worker_id}",
        )
        process.start()
        child_conn.close()
        workers[worker_id] = _Worker(process=process, conn=parent_conn)

    def fail_run(worker: _Worker, worker_id: int, cause: str) -> None:
        """A worker died or timed out while holding a spec: retry or record."""
        spec = worker.current
        assert spec is not None
        worker.current = None
        if attempts[spec.key] <= options.retries:
            pending.appendleft(spec)  # retry before fresh work: bounded latency
        else:
            records[spec.key] = RunRecord(
                spec=spec,
                error=f"{cause} (after {attempts[spec.key]} attempts)",
                attempts=attempts[spec.key],
                worker=worker_id,
            )

    def reap(worker_id: int, cause: str) -> None:
        """Remove a dead/killed worker, salvaging its in-flight spec."""
        worker = workers.pop(worker_id)
        if worker.current is not None:
            fail_run(worker, worker_id, cause)
        worker.conn.close()
        worker.process.join(timeout=_JOIN_GRACE)

    try:
        for _ in range(n_workers):
            spawn()
        while len(records) < len(specs):
            # Hand pending specs to idle workers (the "steal").
            for worker_id, worker in workers.items():
                if not pending:
                    break
                if worker.idle:
                    spec = pending.popleft()
                    attempts[spec.key] += 1
                    worker.conn.send(spec)
                    worker.current = spec
                    worker.started = time.perf_counter()

            # Collect finished runs.
            try:
                worker_id, key, payload = results_queue.get(timeout=_POLL)
            except Empty:
                pass
            else:
                worker = workers.get(worker_id)
                if worker is not None and worker.current is not None:
                    worker.current = None
                    worker.runs += 1
                if key not in records:  # a timed-out run may race its kill
                    records[key] = RunRecord(
                        spec=spec_by_key[key],
                        result=payload.get("result"),
                        error=payload.get("error"),
                        attempts=attempts[key],
                        wall=payload.get("wall", 0.0),
                        worker=worker_id,
                    )
                continue  # drain the queue before liveness/timeout checks

            now = time.perf_counter()
            for worker_id in list(workers):
                worker = workers[worker_id]
                if not worker.process.is_alive():
                    reap(worker_id, "worker died")
                elif (
                    options.timeout is not None
                    and worker.current is not None
                    and now - worker.started > options.timeout
                ):
                    worker.process.kill()
                    reap(worker_id, f"run exceeded {options.timeout}s timeout")

            # Keep the pool sized to the remaining work.
            in_flight = sum(1 for w in workers.values() if not w.idle)
            outstanding = len(specs) - len(records) - in_flight
            while len(workers) < min(n_workers, in_flight + outstanding):
                spawn()
            if not workers and len(records) < len(specs):
                raise RuntimeError("sweep stalled: no live workers and work left")
    finally:
        for worker in workers.values():
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in workers.values():
            worker.process.join(timeout=_JOIN_GRACE)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.kill()
                worker.process.join(timeout=_JOIN_GRACE)
            worker.conn.close()
        results_queue.close()
        results_queue.cancel_join_thread()

    return list(records.values())


def _context(start_method: str) -> Any:
    try:
        return mp.get_context(start_method)
    except ValueError:  # pragma: no cover - platform without fork
        return mp.get_context("spawn")


# ---------------------------------------------------------------------- pmap
def pmap(
    task: str,
    param_list: Sequence[dict[str, Any]],
    workers: int = 1,
    timeout: float | None = None,
) -> list[dict[str, Any]]:
    """Map one task over parameter dicts, preserving order.

    Thin convenience over :func:`run_sweep` for callers (benchmarks, the
    experiments report) that want plain results back, not records. Raises
    if any run failed — partial grids are worse than loud failures there.
    """
    specs = [
        RunSpec(task=task, key=f"{task}/{index:06d}", params=params)
        for index, params in enumerate(param_list)
    ]
    sweep = run_sweep(specs, SweepOptions(workers=workers, timeout=timeout))
    failed = sweep.failed()
    if failed:
        first = failed[0]
        raise RuntimeError(
            f"{len(failed)}/{len(specs)} runs failed; first: "
            f"{first.spec.key}: {first.error}"
        )
    return [record.result for record in sweep.records]  # type: ignore[misc]
