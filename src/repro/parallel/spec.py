"""Run specs and grid builders for parallel sweeps.

A :class:`RunSpec` is the unit of scheduling: a task name (resolved via
:data:`repro.parallel.tasks.TASKS`), a unique sortable ``key``, and a dict
of JSON-ready parameters. **The seed is always an explicit parameter** —
nothing about a run depends on which worker executes it, how many workers
exist, or what ran before it. That is the whole determinism story: the
merged output of a sweep is a pure function of its spec list.

Grid builders turn CLI-level arguments into spec lists. They are plain
functions so tests can call them directly and assert the seed layout.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError

#: Kinds swept by the RRT/throughput figures (mirrors ``repro.cli.KINDS``).
_KINDS = ("original", "read", "write")

#: Table 1 cells: (transaction mode, requests per transaction).
_TABLE1_CELLS = (
    ("read_write", 3),
    ("read_write", 5),
    ("write_only", 3),
    ("write_only", 5),
    ("optimized", 3),
    ("optimized", 5),
)


@dataclass(frozen=True)
class RunSpec:
    """One independent unit of work for the sweep runner.

    ``key`` must be unique within a sweep; merged results are sorted by it,
    so choose keys that sort the way reports should read (zero-padded
    seeds, ``profile/kind`` paths, ...). ``params`` must be picklable and
    JSON-serializable — they are sent to workers and embedded verbatim in
    the merged document.
    """

    task: str
    key: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.key:
            raise ConfigError("RunSpec.key must be non-empty")

    def to_dict(self) -> dict[str, Any]:
        return {"task": self.task, "key": self.key, "params": dict(self.params)}


def validate_specs(specs: Sequence[RunSpec]) -> None:
    """Reject duplicate keys (they would silently collapse in the merge)
    and unknown task names (caller errors, not per-run failures)."""
    from repro.parallel.tasks import TASKS

    seen: dict[str, RunSpec] = {}
    for spec in specs:
        if spec.task not in TASKS:
            raise ConfigError(
                f"unknown task {spec.task!r}; known: {sorted(TASKS)}"
            )
        clash = seen.get(spec.key)
        if clash is not None:
            raise ConfigError(
                f"duplicate run key {spec.key!r} ({clash.task} vs {spec.task})"
            )
        seen[spec.key] = spec


# --------------------------------------------------------------------- grids
def chaos_grid(
    seeds: int = 20,
    first_seed: int = 0,
    protocols: Sequence[str] | None = None,
    **option_overrides: Any,
) -> list[RunSpec]:
    """One chaos trial per (protocol, seed).

    Every spec carries its own seed and a fully materialized options dict —
    a worker reconstructs ``ChaosOptions(**params["options"])`` and calls
    ``run_chaos(params["seed"], options)``. Nothing is derived from sweep
    position or worker identity, so a trial's nemesis schedule is identical
    whether the sweep runs serially, on 4 workers, or after a retry.
    """
    from repro.chaos.runner import PROTOCOLS, ChaosOptions

    if protocols is None:
        protocols = ("basic",)
    for protocol in protocols:
        if protocol not in PROTOCOLS:
            raise ConfigError(f"unknown protocol {protocol!r}; known: {PROTOCOLS}")
    specs = []
    for protocol in protocols:
        options = ChaosOptions(protocol=protocol, **option_overrides)
        for seed in range(first_seed, first_seed + seeds):
            specs.append(
                RunSpec(
                    task="chaos",
                    key=f"chaos/{protocol}/seed={seed:06d}",
                    params={
                        "seed": seed,
                        "options": dataclasses.asdict(options),
                    },
                )
            )
    return specs


def figures_grid(quick: bool = False) -> list[RunSpec]:
    """Every cell of the paper's §4 evaluation as one independent run.

    Mirrors the sections of ``repro experiments``: RRT per profile x kind,
    throughput per figure x client count x kind, Table 1 transaction RRT,
    and Fig. 9 transaction throughput. Seeds match the serial report
    exactly (1/3/2/5 respectively), so a parallel sweep reproduces the same
    numbers as the serial command.
    """
    specs: list[RunSpec] = []
    rrt_samples = 60 if quick else 300
    for profile in ("sysnet", "berkeley_princeton", "wan"):
        for kind in _KINDS:
            specs.append(
                RunSpec(
                    task="rrt",
                    key=f"rrt/{profile}/{kind}",
                    params={
                        "profile": profile,
                        "kind": kind,
                        "samples": rrt_samples,
                        "seed": 1,
                    },
                )
            )
    total = 400 if quick else 1000
    for figure, profile, clients in (
        ("fig5", "sysnet", (1, 2, 4, 8, 16)),
        ("fig6", "sysnet", (8, 16, 32, 64, 128)),
        ("fig7", "berkeley_princeton", (1, 2, 4, 8, 16)),
        ("fig8", "wan", (1, 2, 4, 8, 16)),
    ):
        for c in clients:
            for kind in ("read", "write", "original"):
                specs.append(
                    RunSpec(
                        task="throughput",
                        key=f"throughput/{figure}/{profile}/c={c:03d}/{kind}",
                        params={
                            "profile": profile,
                            "kind": kind,
                            "n_clients": c,
                            "total_requests": total,
                            "seed": 3,
                        },
                    )
                )
    txn_samples = 60 if quick else 200
    for mode, k in _TABLE1_CELLS:
        specs.append(
            RunSpec(
                task="txn_rrt",
                key=f"table1/{mode}/k={k}",
                params={
                    "mode": mode,
                    "requests_per_txn": k,
                    "samples": txn_samples,
                    "seed": 2,
                },
            )
        )
    total_txns = 200 if quick else 400
    for k in (3, 5):
        for c in (1, 2, 4, 8, 16):
            for mode in ("read_write", "write_only", "optimized"):
                specs.append(
                    RunSpec(
                        task="txn_throughput",
                        key=f"fig9/k={k}/c={c:03d}/{mode}",
                        params={
                            "mode": mode,
                            "requests_per_txn": k,
                            "n_clients": c,
                            "total_txns": total_txns,
                            "seed": 5,
                        },
                    )
                )
    return specs


def calibration_grid(samples: int = 400, seeds: int = 4) -> list[RunSpec]:
    """The calibration set: per-profile RRT runs across several seeds.

    Used when re-fitting profile constants — many seeds of the same cell
    give the across-seed spread that the calibration docs report.
    """
    specs = []
    for profile in ("sysnet", "berkeley_princeton", "wan"):
        for kind in _KINDS:
            for seed in range(1, 1 + seeds):
                specs.append(
                    RunSpec(
                        task="rrt",
                        key=f"calibration/{profile}/{kind}/seed={seed:04d}",
                        params={
                            "profile": profile,
                            "kind": kind,
                            "samples": samples,
                            "seed": seed,
                        },
                    )
                )
    return specs


def selftest_grid(runs: int = 32, sleep: float = 0.05) -> list[RunSpec]:
    """Runner self-test: ``runs`` sleep-bound echo tasks.

    Demonstrates (and lets CI measure) scheduler overlap independent of
    core count — sleeps release the CPU, so the speedup at N workers
    approaches N even on a single-core box. Results are still
    deterministic (each task echoes its params), so the byte-identical
    merge contract is exercised too.
    """
    return [
        RunSpec(
            task="echo",
            key=f"selftest/{index:04d}",
            params={"sleep": sleep, "index": index},
        )
        for index in range(runs)
    ]


GRIDS = {
    "chaos": chaos_grid,
    "figures": figures_grid,
    "calibration": calibration_grid,
    "selftest": selftest_grid,
}
