"""Deterministic merging of sweep records.

The merged document has two strictly separated parts:

* ``results`` — a pure function of the spec list: one entry per run,
  sorted by key, carrying only the task's deterministic output (plus the
  spec itself). Byte-identical across worker counts, completion orders,
  retries, and machines.
* ``timing`` — everything host-dependent: per-run and total wall-clock,
  worker count, attempt counts. Consumers that diff sweeps diff the
  results section; consumers that chart speedups read timing.

:func:`canonical_json` pins the byte encoding (sorted keys, fixed
separators, trailing newline) so "byte-identical" is a testable promise,
not an accident of ``json.dumps`` defaults.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.runner import RunRecord, SweepResult


def merge_records(records: Sequence["RunRecord"]) -> dict[str, Any]:
    """The deterministic results section: sorted by key, no host facts."""
    runs = []
    for record in sorted(records, key=lambda r: r.spec.key):
        entry: dict[str, Any] = {
            "key": record.spec.key,
            "task": record.spec.task,
            "params": dict(record.spec.params),
            "ok": record.ok,
        }
        if record.ok:
            entry["result"] = record.result
        else:
            entry["error"] = record.error
        runs.append(entry)
    failed = [r.spec.key for r in records if not r.ok]
    return {
        "runs": runs,
        "aggregate": {
            "total": len(runs),
            "ok": len(runs) - len(failed),
            "failed": sorted(failed),
        },
    }


def timing_summary(sweep: "SweepResult") -> dict[str, Any]:
    """The host-dependent timing section (never part of the results diff)."""
    per_run = {
        record.spec.key: {
            "wall": round(record.wall, 6),
            "attempts": record.attempts,
        }
        for record in sweep.records
    }
    busy = sum(record.wall for record in sweep.records)
    return {
        "workers": sweep.workers,
        "wall": round(sweep.wall, 6),
        "busy": round(busy, 6),
        #: Busy/wall — how much parallelism was actually realized.
        "speedup": round(busy / sweep.wall, 3) if sweep.wall > 0 else 0.0,
        "runs": per_run,
    }


def merge_sweep(sweep: "SweepResult", name: str = "sweep") -> dict[str, Any]:
    """Full document: deterministic results + separated timing."""
    return {
        "name": name,
        "results": merge_records(sweep.records),
        "timing": timing_summary(sweep),
    }


def canonical_json(doc: Any) -> str:
    """The one true byte encoding for merged documents."""
    return json.dumps(doc, sort_keys=True, separators=(",", ": "), indent=2) + "\n"
