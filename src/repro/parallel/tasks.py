"""Task functions executed by sweep workers.

Every task is a module-level function ``(params: dict) -> dict`` so it
pickles by reference under any multiprocessing start method. Tasks return
**deterministic, JSON-ready** dicts: no host wall-time, no worker identity,
no object references — the merge layer depends on a task's output being a
pure function of its params.

Latency summaries are flattened with :func:`summary_dict` (full
:class:`~repro.util.stats.Summary` detail) so merged sweep documents carry
enough to regenerate any table without re-running.
"""

from __future__ import annotations

import os
import signal
import time
from collections.abc import Callable
from typing import Any

from repro.errors import ConfigError
from repro.util.stats import Summary


def summary_dict(summary: Summary | None) -> dict[str, Any] | None:
    """Flatten a latency summary; None stays None (no samples)."""
    if summary is None:
        return None
    return {
        "n": summary.n,
        "mean": summary.mean,
        "std": summary.std,
        "ci99": summary.ci99,
        "p50": summary.p50,
        "p95": summary.p95,
        "p99": summary.p99,
        "min": summary.minimum,
        "max": summary.maximum,
    }


def _run_result_dict(result: Any) -> dict[str, Any]:
    """Common serialization for scenario ``RunResult`` objects."""
    return {
        "n_clients": result.n_clients,
        "duration": result.duration,
        "total_requests": result.total_requests,
        "total_steps": result.total_steps,
        "aborted_steps": result.aborted_steps,
        "throughput": result.throughput,
        "step_throughput": result.step_throughput,
        "total_messages": result.total_messages,
        "total_bytes": result.total_bytes,
        "rrt": summary_dict(result.rrt),
        "trt": summary_dict(result.trt),
    }


# ---------------------------------------------------------------- real tasks
def chaos_task(params: dict[str, Any]) -> dict[str, Any]:
    """One chaos trial. The seed comes from the spec — never from sweep
    position — so the nemesis schedule is identical under any worker
    layout or retry history (the satellite regression test pins this)."""
    from repro.chaos.runner import ChaosOptions, run_chaos

    options = ChaosOptions(**params["options"])
    result = run_chaos(params["seed"], options)
    return result.to_dict()


def rrt_task(params: dict[str, Any]) -> dict[str, Any]:
    from repro.cluster.scenarios import rrt_scenario

    result = rrt_scenario(
        params["profile"],
        params["kind"],
        samples=params.get("samples", 200),
        seed=params["seed"],
    )
    return _run_result_dict(result)


def throughput_task(params: dict[str, Any]) -> dict[str, Any]:
    from repro.cluster.scenarios import throughput_scenario

    result = throughput_scenario(
        params["profile"],
        params["kind"],
        params["n_clients"],
        total_requests=params.get("total_requests", 1000),
        seed=params["seed"],
    )
    return _run_result_dict(result)


def txn_rrt_task(params: dict[str, Any]) -> dict[str, Any]:
    from repro.cluster.scenarios import txn_rrt_scenario

    result = txn_rrt_scenario(
        params["mode"],
        params["requests_per_txn"],
        samples=params.get("samples", 100),
        profile=params.get("profile", "sysnet"),
        seed=params["seed"],
    )
    return _run_result_dict(result)


def txn_throughput_task(params: dict[str, Any]) -> dict[str, Any]:
    from repro.cluster.scenarios import txn_throughput_scenario

    result = txn_throughput_scenario(
        params["mode"],
        params["requests_per_txn"],
        params["n_clients"],
        total_txns=params.get("total_txns", 500),
        profile=params.get("profile", "sysnet"),
        seed=params["seed"],
    )
    return _run_result_dict(result)


def chaos_result_task(params: dict[str, Any]) -> Any:
    """Like :func:`chaos_task` but returns the full :class:`ChaosResult`
    object (picklable; ``cluster`` is never kept). Used by ``repro chaos
    --workers`` so the existing reporting/shrinking path works unchanged.
    **Not JSON-ready** — excluded from ``repro sweep`` grids.
    """
    from repro.chaos.runner import ChaosOptions, run_chaos

    options = ChaosOptions(**params["options"])
    return run_chaos(params["seed"], options)


# ---------------------------------------------------------- test-only tasks
def echo_task(params: dict[str, Any]) -> dict[str, Any]:
    """Return the params (optionally after sleeping). Runner/merge tests."""
    delay = params.get("sleep", 0.0)
    if delay:
        time.sleep(delay)
    return {"echo": {k: v for k, v in params.items() if k != "sleep"}}


def crash_task(params: dict[str, Any]) -> dict[str, Any]:
    """SIGKILL the worker unless ``marker`` (a file path) exists.

    First attempt: the marker is absent, so the task creates it and kills
    its own process — the parent sees a dead worker mid-run. Retry (on a
    fresh worker): the marker exists, the task completes normally. This
    gives the crash-recovery test a deterministic one-shot failure.
    """
    marker = params["marker"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("crashed once\n")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"echo": {"recovered": True, "value": params.get("value")}}


def hang_task(params: dict[str, Any]) -> dict[str, Any]:
    """Sleep far past any sane per-run timeout. Timeout-handling tests."""
    time.sleep(params.get("duration", 3600.0))
    return {"echo": {"finished": True}}  # pragma: no cover - killed first


def failing_task(params: dict[str, Any]) -> dict[str, Any]:
    """Raise deterministically. Error-record tests."""
    raise RuntimeError(params.get("message", "task failed"))


TASKS: dict[str, Callable[[dict[str, Any]], Any]] = {
    "chaos": chaos_task,
    "chaos_result": chaos_result_task,
    "rrt": rrt_task,
    "throughput": throughput_task,
    "txn_rrt": txn_rrt_task,
    "txn_throughput": txn_throughput_task,
    "echo": echo_task,
    "crash": crash_task,
    "hang": hang_task,
    "fail": failing_task,
}


def run_task(task: str, params: dict[str, Any]) -> Any:
    """Dispatch one task by name (shared by workers and the serial path)."""
    fn = TASKS.get(task)
    if fn is None:
        raise ConfigError(f"unknown task {task!r}; known: {sorted(TASKS)}")
    return fn(params)
