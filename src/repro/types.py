"""Common type aliases and small shared value types.

Kept dependency-free so every subpackage can import it without cycles.
"""

from __future__ import annotations

import enum
from typing import TypeAlias

#: Identifier of a process (replica or client). Stable across crash/recover.
ProcessId: TypeAlias = str

#: Simulated (or wall-clock) time in **seconds**.
Time: TypeAlias = float

#: Monotonically increasing consensus-instance number (1-based, as in the
#: paper's "the ith request").
InstanceId: TypeAlias = int

#: Identifier of a replication group (shard). Every process hosts the same
#: set of groups; group 0 is the only group of an unsharded cluster, so all
#: single-group code paths read naturally with ``group=0`` defaults.
GroupId: TypeAlias = int


class RequestKind(enum.Enum):
    """Classification of client requests, following §4 of the paper.

    * ``READ`` — does not change service state; coordinated via X-Paxos.
    * ``WRITE`` — changes service state; coordinated via the basic protocol.
    * ``ORIGINAL`` — baseline: the leader replies immediately with **no**
      coordination, modelling the unreplicated service.
    * ``TXN_OP`` — an operation inside a client transaction (T-Paxos path:
      executed and answered immediately by the leader, replicated at commit).
    * ``TXN_COMMIT`` / ``TXN_ABORT`` — transaction boundary requests.
    """

    READ = "read"
    WRITE = "write"
    ORIGINAL = "original"
    TXN_OP = "txn_op"
    TXN_COMMIT = "txn_commit"
    TXN_ABORT = "txn_abort"

    @property
    def is_transactional(self) -> bool:
        return self in (RequestKind.TXN_OP, RequestKind.TXN_COMMIT, RequestKind.TXN_ABORT)


class ReplyStatus(enum.Enum):
    """Outcome carried on a :class:`repro.core.messages.Reply`."""

    OK = "ok"
    ABORTED = "aborted"        # transaction aborted (conflict or leader switch)
    NOT_LEADER = "not_leader"  # replica is not the leader; client should wait/retry
    ERROR = "error"            # service-level failure


class StateTransferMode(enum.Enum):
    """How the leader ships its post-execution state to the backups (§3.3).

    * ``FULL`` — the entire service state accompanies each proposal.
    * ``DELTA`` — only the state update produced by the request.
    * ``REPRO`` — reproduction info (e.g. an RNG draw or a scheduling
      decision) from which each replica regenerates the state itself.
    * ``SMR`` — **no** state is shipped: every replica re-executes the
      request itself. This is classic Multi-Paxos replicated state
      machines [27], the paper's baseline — correct *only* for
      deterministic services; on a nondeterministic service the replicas
      diverge, which is the problem the paper exists to solve.
    """

    FULL = "full"
    DELTA = "delta"
    REPRO = "repro"
    SMR = "smr"
