"""The elector contract.

An elector is a *component of a replica*, not a separate process: it is
attached to its host replica, may exchange its own messages through the
host's environment, and notifies the host when its local view of the
leader changes. Different replicas may transiently disagree — that is the
nature of Ω in an asynchronous system; ballots protect safety, the elector
only provides liveness and stability.
"""

from __future__ import annotations

import abc
from typing import Any, Protocol

from repro.types import ProcessId


class ElectorHost(Protocol):
    """What an elector needs from its replica."""

    pid: ProcessId

    @property
    def now(self) -> float: ...

    def send(self, dst: ProcessId, msg: Any) -> None: ...

    def broadcast(self, dsts: Any, msg: Any) -> None: ...

    def set_timer(self, delay: float, fn: Any, *args: Any) -> Any: ...

    def leader_changed(self, new_leader: ProcessId | None) -> None:
        """Called by the elector when its local leader view changes."""
        ...


class LeaderElector(abc.ABC):
    """Base class for leader electors."""

    def __init__(self) -> None:
        self.host: ElectorHost | None = None
        self.peers: tuple[ProcessId, ...] = ()

    def attach(self, host: ElectorHost, peers: tuple[ProcessId, ...]) -> None:
        """Bind to the host replica. ``peers`` includes the host itself."""
        self.host = host
        self.peers = peers

    # ------------------------------------------------------------- lifecycle
    def on_start(self) -> None:
        """Called when the host starts."""

    def on_crash(self) -> None:
        """Called when the host crashes."""

    def on_recover(self) -> None:
        """Called when the host recovers."""

    def on_message(self, src: ProcessId, msg: Any) -> bool:
        """Offer a delivered message; return True if it was an election
        message (consumed), False to let the replica handle it."""
        return False

    # --------------------------------------------------------------- queries
    @abc.abstractmethod
    def current_leader(self) -> ProcessId | None:
        """This replica's current view of who the leader is (may be stale)."""

    def is_leader(self) -> bool:
        """Convenience: does this replica currently believe it leads?"""
        assert self.host is not None
        return self.current_leader() == self.host.pid
