"""Leader election — the "underlying leader election service" of §3.1.

The paper assumes an Ω-style elector with good *leader stability* (§3.6,
citing Malkhi et al. [22]): once a leader is elected it stays leader until
it actually crashes, which is what X-Paxos and T-Paxos need ("long enough"
leader tenure). Implementations:

* :class:`repro.election.static.StaticElector` — a fixed leader, for
  failure-free benchmark runs (the paper's common case).
* :class:`repro.election.static.ManualElector` — test-controlled switches.
* :class:`repro.election.omega.OmegaElector` — heartbeat-based eventual
  leader election with the stability property.
"""

from repro.election.base import ElectorHost, LeaderElector
from repro.election.omega import Heartbeat, OmegaElector
from repro.election.static import ManualElector, ManualElectorGroup, StaticElector

__all__ = [
    "ElectorHost",
    "Heartbeat",
    "LeaderElector",
    "ManualElector",
    "ManualElectorGroup",
    "OmegaElector",
    "StaticElector",
]
