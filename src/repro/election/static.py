"""Trivial electors for benchmarks and tests.

The paper's measurements are taken in the failure-free common case with a
single stable leader ("we make the usual assumption that the common case is
the one of no suspicions and no failures"). :class:`StaticElector` models
exactly that. :class:`ManualElector` lets tests and fault schedules force a
leader switch at a precise simulated time.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.election.base import LeaderElector
from repro.types import ProcessId


class StaticElector(LeaderElector):
    """A fixed, never-changing leader (the benchmark common case)."""

    def __init__(self, leader: ProcessId) -> None:
        super().__init__()
        self._leader = leader

    def on_start(self) -> None:
        assert self.host is not None
        self.host.leader_changed(self._leader)

    def on_recover(self) -> None:
        # Volatile leadership state died with the crash; re-announce.
        self.on_start()

    def current_leader(self) -> ProcessId | None:
        return self._leader


class ManualElector(LeaderElector):
    """A test-controlled elector.

    The controller (test or fault schedule) calls :meth:`set_leader` on each
    replica's elector instance — typically through
    :meth:`ManualElectorGroup.set_leader`, which flips all replicas at once.
    """

    def __init__(self, initial: ProcessId | None = None) -> None:
        super().__init__()
        self._leader = initial

    def on_start(self) -> None:
        assert self.host is not None
        if self._leader is not None:
            self.host.leader_changed(self._leader)

    def on_recover(self) -> None:
        self.on_start()

    def set_leader(self, leader: ProcessId | None) -> None:
        if leader == self._leader:
            return
        self._leader = leader
        # A crashed host must not observe view changes (a dead process
        # executes no steps); on_recover re-announces the current leader.
        if self.host is not None and self.host.alive:
            self.host.leader_changed(leader)

    def current_leader(self) -> ProcessId | None:
        return self._leader


class ManualElectorGroup:
    """Convenience wrapper: one ManualElector per replica, switched together."""

    def __init__(self, initial: ProcessId | None = None) -> None:
        self._initial = initial
        self.electors: dict[ProcessId, ManualElector] = {}

    def elector_for(self, pid: ProcessId) -> ManualElector:
        elector = ManualElector(self._initial)
        self.electors[pid] = elector
        return elector

    def set_leader(
        self,
        leader: ProcessId | None,
        pids: Iterable[ProcessId] | None = None,
    ) -> None:
        """Flip replica views at once (an idealized instant election).

        ``pids`` restricts the flip to a subset of replicas — models a view
        change that a partitioned-away minority cannot observe."""
        for pid, elector in self.electors.items():
            if pids is None or pid in pids:
                elector.set_leader(leader)
