"""Ω-style heartbeat leader election with leader stability (§3.6).

Every replica periodically broadcasts a heartbeat carrying its current
leader view. Each replica tracks whom it has heard from recently; a process
is *suspected* once no heartbeat arrived within ``suspect_timeout``. The
local choice is:

* keep the current leader while it is unsuspected (**stability** — the
  §3.6 requirement, after Malkhi, Oprea & Zhou [22]: a working leader is
  not deposed just because a smaller-id process comes back);
* a process that has no leader yet (boot or recovery) first waits one
  ``suspect_timeout`` *grace period*, during which it adopts any
  unsuspected incumbent's self-claim — this is what makes a recovered
  small-id process defer to the working leader instead of electing itself;
* if the grace period passes with no incumbent heard, elect the
  smallest-id unsuspected process.

This implements Ω under the usual partial-synchrony assumption: once
message delays stabilize below ``suspect_timeout``, all correct replicas
converge on the same (correct) leader forever. Before that, views may
disagree — ballot numbers in the replication protocol keep that safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.election.base import LeaderElector
from repro.types import ProcessId


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """I am alive; ``claims`` is my current leader view (None if undecided).

    Election traffic, invisible to the replication protocol.
    """

    sender: ProcessId
    claims: ProcessId | None = None


class OmegaElector(LeaderElector):
    """Heartbeat-based eventual leader election with stability."""

    def __init__(
        self,
        heartbeat_interval: float = 0.05,
        suspect_timeout: float = 0.25,
    ) -> None:
        super().__init__()
        if suspect_timeout <= heartbeat_interval:
            raise ValueError("suspect_timeout must exceed heartbeat_interval")
        self.heartbeat_interval = heartbeat_interval
        self.suspect_timeout = suspect_timeout
        self._last_heard: dict[ProcessId, float] = {}
        self._leader: ProcessId | None = None
        self._grace_until = 0.0
        self._running = False
        #: Local leader-view changes (stats for the §3.6 experiments).
        self.switches = 0

    # ------------------------------------------------------------- lifecycle
    def on_start(self) -> None:
        assert self.host is not None
        self._running = True
        self._leader = None
        now = self.host.now
        for peer in self.peers:
            self._last_heard[peer] = now
        # Grace period: listen for an incumbent before electing anyone.
        self._grace_until = now + self.suspect_timeout
        self._beat()
        self._tick()

    def on_crash(self) -> None:
        self._running = False
        self._leader = None

    def on_recover(self) -> None:
        self.on_start()

    # -------------------------------------------------------------- heartbeat
    def _beat(self) -> None:
        if not self._running:
            return
        assert self.host is not None
        others = tuple(p for p in self.peers if p != self.host.pid)
        self.host.broadcast(others, Heartbeat(sender=self.host.pid, claims=self._leader))
        self.host.set_timer(self.heartbeat_interval, self._beat)

    def _tick(self) -> None:
        if not self._running:
            return
        assert self.host is not None
        self._evaluate()
        self.host.set_timer(self.heartbeat_interval, self._tick)

    def on_message(self, src: ProcessId, msg: Any) -> bool:
        if not isinstance(msg, Heartbeat):
            return False
        if not self._running:
            return True
        assert self.host is not None
        self._last_heard[msg.sender] = self.host.now
        if msg.claims == msg.sender:
            # An incumbent asserting leadership: defer to it if we have no
            # working leader of our own.
            unsuspected = self._unsuspected()
            if msg.sender in unsuspected and (
                self._leader is None or self._leader not in unsuspected
            ):
                self._set_leader(msg.sender)
        self._evaluate()
        return True

    # -------------------------------------------------------------- election
    def _unsuspected(self) -> list[ProcessId]:
        assert self.host is not None
        now = self.host.now
        alive = [
            pid
            for pid in self.peers
            if pid == self.host.pid
            or now - self._last_heard.get(pid, -1e18) <= self.suspect_timeout
        ]
        return sorted(alive)

    def _evaluate(self) -> None:
        assert self.host is not None
        alive = self._unsuspected()
        if self._leader in alive:
            return  # stability: keep a working leader
        if self._leader is None and self.host.now < self._grace_until:
            return  # still listening for an incumbent
        self._set_leader(alive[0] if alive else None)

    def _set_leader(self, leader: ProcessId | None) -> None:
        if leader == self._leader:
            return
        assert self.host is not None
        self._leader = leader
        self.switches += 1
        self.host.leader_changed(leader)

    def current_leader(self) -> ProcessId | None:
        return self._leader
