"""Wall-clock runtime: a scheduler thread delivering in-memory messages.

One dedicated scheduler thread owns a priority queue of pending events
(message deliveries and timers) keyed by wall-clock deadline. Handlers run
*on the scheduler thread*, so each process's handlers are serialized — the
same execution model as the simulator, just against real time. Latency can
be injected per message via an optional :class:`LatencyModel`, which lets
the integration tests exercise timeout/retransmission paths for real.

Use :meth:`LocalRuntime.run_until` from the main thread to block until a
condition holds (polling), then :meth:`LocalRuntime.shutdown`.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
import time
from collections.abc import Callable
from typing import Any

from repro.errors import TransportError
from repro.net.latency import LatencyModel
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer
from repro.sim.process import Env, Process, TimerHandle
from repro.types import ProcessId


class _LocalTimer(TimerHandle):
    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def active(self) -> bool:
        return not self._cancelled


class _LocalEnv(Env):
    __slots__ = ("_runtime", "_pid", "_rng")

    def __init__(self, runtime: "LocalRuntime", pid: ProcessId) -> None:
        self._runtime = runtime
        self._pid = pid
        self._rng = random.Random(f"{runtime.seed}/proc/{pid}")

    @property
    def pid(self) -> ProcessId:
        return self._pid

    @property
    def now(self) -> float:
        return self._runtime.now

    @property
    def rng(self) -> random.Random:
        return self._rng

    def send(self, dst: ProcessId, msg: Any) -> None:
        self._runtime._send(self._pid, dst, msg)

    def set_timer(self, delay: float, fn: Callable[..., None], *args: Any) -> TimerHandle:
        return self._runtime._set_timer(self._pid, delay, fn, args)


class LocalRuntime:
    """Threaded wall-clock runtime for :class:`repro.sim.process.Process`es."""

    def __init__(
        self,
        latency: LatencyModel | None = None,
        seed: int = 0,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> None:
        self.latency = latency
        self.seed = seed
        #: Causal tracing against the wall clock. Handlers all run on the
        #: scheduler thread, so the ambient-span discipline is safe here;
        #: context travels in the delivery/timer closures (envelope layer),
        #: exactly as in the simulated world.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._t0 = time.monotonic()
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._lock = threading.Condition()
        self._processes: dict[ProcessId, Process] = {}
        self._rng = random.Random(f"{seed}/latency")
        self._stopping = False
        self._thread = threading.Thread(target=self._loop, name="repro-local-runtime", daemon=True)
        self._started = False

    # -------------------------------------------------------------- lifecycle
    @property
    def now(self) -> float:
        return time.monotonic() - self._t0

    def add(self, process: Process) -> Process:
        if self._started:
            raise TransportError("add processes before start()")
        if process.pid in self._processes:
            raise TransportError(f"duplicate process id {process.pid!r}")
        self._processes[process.pid] = process
        process.bind(_LocalEnv(self, process.pid))
        return process

    def start(self) -> "LocalRuntime":
        if self._started:
            raise TransportError("runtime already started")
        self._started = True
        self._thread.start()
        for process in self._processes.values():
            self._push(0.0, process.on_start)
        return self

    def shutdown(self, timeout: float = 5.0) -> None:
        with self._lock:
            self._stopping = True
            self._lock.notify_all()
        if self._thread.ident is not None:  # only join a started thread
            self._thread.join(timeout=timeout)

    def run_until(self, predicate: Callable[[], bool], timeout: float = 30.0) -> bool:
        """Poll ``predicate`` from the caller's thread until it holds."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.002)
        return predicate()

    # -------------------------------------------------------------- internals
    def _push(self, delay: float, fn: Callable[[], None]) -> None:
        deadline = self.now + max(0.0, delay)
        with self._lock:
            heapq.heappush(self._queue, (deadline, next(self._seq), fn))
            self._lock.notify_all()

    def _send(self, src: ProcessId, dst: ProcessId, msg: Any) -> None:
        sender = self._processes.get(src)
        if sender is None or not sender.alive:
            return
        receiver = self._processes.get(dst)
        if receiver is None:
            raise TransportError(f"{src} sent to unknown process {dst!r}")
        delay = self.latency.sample(self._rng) if self.latency is not None else 0.0
        tracer = self.tracer
        span = None
        if tracer.enabled:
            span = tracer.start_span(
                f"msg.{type(msg).__name__}", pid=dst, kind="message",
                attrs={"src": src, "dst": dst},
            )

        def deliver() -> None:
            if receiver.alive:
                tracer.end(span)
                token = tracer.activate(span)
                try:
                    receiver.on_message(src, msg)
                finally:
                    tracer.restore(token)
            elif span is not None:
                span.attrs.setdefault("cause", "crashed")
                tracer.end(span, status="dropped")

        self._push(delay, deliver)

    def _set_timer(
        self, pid: ProcessId, delay: float, fn: Callable[..., None], args: tuple
    ) -> TimerHandle:
        handle = _LocalTimer()
        process = self._processes[pid]
        tracer = self.tracer
        ctx = tracer.current

        def fire() -> None:
            if handle.active and process.alive:
                token = tracer.activate(ctx)
                try:
                    fn(*args)
                finally:
                    tracer.restore(token)

        self._push(delay, fire)
        return handle

    def _loop(self) -> None:
        while True:
            with self._lock:
                if self._stopping:
                    return
                if not self._queue:
                    self._lock.wait(timeout=0.05)
                    continue
                deadline, _seq, fn = self._queue[0]
                wait = deadline - self.now
                if wait > 0:
                    self._lock.wait(timeout=min(wait, 0.05))
                    continue
                heapq.heappop(self._queue)
            try:
                fn()
            except Exception:  # pragma: no cover - surfaced via test failures
                import traceback

                traceback.print_exc()
