"""Length-prefixed pickle framing for the TCP transport.

Frame format: 4-byte big-endian payload length, then the pickled message.
Pickle is acceptable here because both endpoints are this library's own
processes on one machine (the paper's prototype likewise used its own
binary format over TCP); this is not a security boundary.
"""

from __future__ import annotations

import pickle
import struct
from collections.abc import Iterator
from typing import Any

_HEADER = struct.Struct(">I")

#: Refuse frames larger than this (corrupt stream guard), 64 MiB.
MAX_FRAME = 64 * 1024 * 1024


def encode_frame(message: Any) -> bytes:
    """Serialize one message into a length-prefixed frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise ValueError(f"message of {len(payload)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(payload)) + payload


def encoded_size(message: Any) -> int:
    """Wire size of ``message`` in bytes (header + pickled payload).

    This is the byte-accounting primitive of the observability layer: the
    simulated network carries object references, so "bytes on the wire"
    means "what the TCP transport would have framed".
    """
    return _HEADER.size + len(pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))


class FrameDecoder:
    """Incremental decoder: feed bytes, iterate complete messages."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[Any]:
        """Add received bytes; yield every message completed by them."""
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME:
                raise ValueError(f"frame length {length} exceeds MAX_FRAME")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            yield pickle.loads(payload)

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


def decode_frames(data: bytes) -> list[Any]:
    """Decode a byte string containing zero or more complete frames."""
    decoder = FrameDecoder()
    messages = list(decoder.feed(data))
    if decoder.pending_bytes:
        raise ValueError(f"{decoder.pending_bytes} trailing bytes after last frame")
    return messages
