"""Real (non-simulated) runtimes for the protocol stack.

The protocol code is written against :class:`repro.sim.process.Env`, so the
same :class:`repro.core.replica.Replica` and :class:`repro.client.Client`
objects run unmodified on:

* :class:`repro.transport.local.LocalRuntime` — wall-clock time, a
  scheduler thread, in-memory delivery (with optional injected latency);
* :class:`repro.transport.tcp.TcpRuntime` — real TCP sockets on localhost
  with length-prefixed pickled frames, as in the paper's prototype.

These exist to demonstrate that the protocol layer is simulator-agnostic;
all *measurements* come from the simulator, where time is controlled.
"""

from repro.transport.codec import decode_frames, encode_frame
from repro.transport.local import LocalRuntime
from repro.transport.tcp import TcpRuntime

__all__ = ["LocalRuntime", "TcpRuntime", "decode_frames", "encode_frame"]
