"""Real-TCP runtime on localhost (asyncio), as in the paper's prototype.

"The communication between service replicas, and between clients and
service replicas, uses TCP sockets." (§4.) This runtime gives every
process a listening socket on 127.0.0.1; messages are pickled,
length-prefixed (:mod:`repro.transport.codec`) and sent over lazily opened
connections. Handlers run on the event-loop thread, so each process's
handlers are serialized, matching the simulator's execution model.

This backend exists to prove the protocol stack is transport-agnostic and
to exercise real socket behaviour (connection setup, framing across
segment boundaries) in the integration tests — throughput *measurements*
still come from the simulator, where time is controlled.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from collections.abc import Callable
from typing import Any

from repro.errors import TransportError
from repro.sim.process import Env, Process, TimerHandle
from repro.transport.codec import FrameDecoder, encode_frame
from repro.types import ProcessId


class _TcpTimer(TimerHandle):
    __slots__ = ("_handle",)

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle

    def cancel(self) -> None:
        self._handle.cancel()

    @property
    def active(self) -> bool:
        return not self._handle.cancelled()


class _TcpEnv(Env):
    __slots__ = ("_runtime", "_pid", "_rng")

    def __init__(self, runtime: "TcpRuntime", pid: ProcessId) -> None:
        self._runtime = runtime
        self._pid = pid
        self._rng = random.Random(f"{runtime.seed}/proc/{pid}")

    @property
    def pid(self) -> ProcessId:
        return self._pid

    @property
    def now(self) -> float:
        return self._runtime.now

    @property
    def rng(self) -> random.Random:
        return self._rng

    def send(self, dst: ProcessId, msg: Any) -> None:
        self._runtime._send(self._pid, dst, msg)

    def set_timer(self, delay: float, fn: Callable[..., None], *args: Any) -> TimerHandle:
        return self._runtime._set_timer(self._pid, delay, fn, args)


class TcpRuntime:
    """Runs processes over real localhost TCP inside one asyncio loop.

    Usage::

        runtime = TcpRuntime()
        runtime.add(replica); runtime.add(client)
        runtime.start()                       # binds sockets, starts loop thread
        runtime.run_until(lambda: client.done)
        runtime.shutdown()
    """

    def __init__(self, seed: int = 0, host: str = "127.0.0.1") -> None:
        self.seed = seed
        self.host = host
        self._t0 = time.monotonic()
        self._processes: dict[ProcessId, Process] = {}
        self._ports: dict[ProcessId, int] = {}
        self._servers: dict[ProcessId, asyncio.AbstractServer] = {}
        #: per (src, dst): a connected StreamWriter, or a list of frames
        #: buffered while the connection attempt is in flight.
        self._out: dict[tuple[ProcessId, ProcessId], asyncio.StreamWriter | list[bytes]] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self.bytes_sent = 0
        self.messages_sent = 0

    # -------------------------------------------------------------- lifecycle
    @property
    def now(self) -> float:
        return time.monotonic() - self._t0

    def add(self, process: Process) -> Process:
        if self._started.is_set():
            raise TransportError("add processes before start()")
        if process.pid in self._processes:
            raise TransportError(f"duplicate process id {process.pid!r}")
        self._processes[process.pid] = process
        process.bind(_TcpEnv(self, process.pid))
        return process

    def start(self, timeout: float = 10.0) -> "TcpRuntime":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-tcp-runtime", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=timeout):
            raise TransportError("TCP runtime failed to start in time")
        return self

    def _thread_main(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        for pid in self._processes:
            server = await asyncio.start_server(
                lambda r, w, pid=pid: self._serve(pid, r, w), self.host, 0
            )
            self._servers[pid] = server
            self._ports[pid] = server.sockets[0].getsockname()[1]
        for process in self._processes.values():
            process.on_start()
        self._started.set()
        await self._stop_event.wait()
        for server in self._servers.values():
            server.close()
        for entry in self._out.values():
            if isinstance(entry, asyncio.StreamWriter):
                entry.close()

    def shutdown(self, timeout: float = 5.0) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def run_until(self, predicate: Callable[[], bool], timeout: float = 30.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.002)
        return predicate()

    def port_of(self, pid: ProcessId) -> int:
        return self._ports[pid]

    # ---------------------------------------------------------------- serving
    async def _serve(
        self, pid: ProcessId, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Handle one inbound connection to ``pid``'s listening socket."""
        process = self._processes[pid]
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                for src, msg in decoder.feed(data):
                    if not process.alive:
                        continue
                    try:
                        process.on_message(src, msg)
                    except Exception:  # a poisoned message must not kill the link
                        import traceback

                        traceback.print_exc()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return
        except asyncio.CancelledError:
            return  # orderly shutdown
        finally:
            writer.close()

    # ---------------------------------------------------------------- sending
    def _send(self, src: ProcessId, dst: ProcessId, msg: Any) -> None:
        loop = self._loop
        if loop is None:
            raise TransportError("runtime not started")
        sender = self._processes.get(src)
        if sender is None or not sender.alive:
            return
        if dst not in self._processes:
            raise TransportError(f"{src} sent to unknown process {dst!r}")
        # Envelope carries the source pid; frame it once, ship it on the loop.
        frame = encode_frame((src, msg))
        self.messages_sent += 1
        self.bytes_sent += len(frame)
        loop.call_soon_threadsafe(self._write, src, dst, frame)

    def _write(self, src: ProcessId, dst: ProcessId, frame: bytes) -> None:
        """Runs on the loop thread. One connection per (src, dst); frames
        sent while the connect is in flight are buffered in order so TCP's
        FIFO guarantee is preserved end to end."""
        assert self._loop is not None
        key = (src, dst)
        entry = self._out.get(key)
        if isinstance(entry, asyncio.StreamWriter):
            if not entry.is_closing():
                entry.write(frame)
                return
            entry = None
            del self._out[key]
        if isinstance(entry, list):
            entry.append(frame)
            return
        self._out[key] = [frame]
        self._loop.create_task(self._connect(key, dst))

    async def _connect(self, key: tuple[ProcessId, ProcessId], dst: ProcessId) -> None:
        try:
            _reader, writer = await asyncio.open_connection(self.host, self._ports[dst])
        except OSError:
            # Receiver gone; drop the buffer — retransmissions cope.
            self._out.pop(key, None)
            return
        buffered = self._out[key]
        assert isinstance(buffered, list)
        self._out[key] = writer
        for frame in buffered:
            writer.write(frame)

    # ----------------------------------------------------------------- timers
    def _set_timer(
        self, pid: ProcessId, delay: float, fn: Callable[..., None], args: tuple
    ) -> TimerHandle:
        loop = self._loop
        if loop is None:
            raise TransportError("runtime not started")
        process = self._processes[pid]
        holder: list[_TcpTimer] = []

        def fire() -> None:
            if process.alive:
                fn(*args)

        if threading.current_thread() is self._thread:
            handle = loop.call_later(delay, fire)
            return _TcpTimer(handle)
        # Called from another thread (e.g. run_until polling): hop onto loop.
        done = threading.Event()

        def schedule() -> None:
            holder.append(_TcpTimer(loop.call_later(delay, fire)))
            done.set()

        loop.call_soon_threadsafe(schedule)
        done.wait(timeout=5.0)
        if not holder:
            raise TransportError("failed to schedule timer on the loop")
        return holder[0]
