"""Fault schedules: scripted crashes, recoveries, partitions and leader
switches against a running :class:`repro.cluster.harness.Cluster`.

Actions are applied at absolute simulated times. With the ``manual``
elector, :meth:`FaultSchedule.switch_leader` flips every replica's view at
once (an idealized instantaneous election); with the ``omega`` elector,
crash the leader instead and let the heartbeats time out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigError
from repro.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.harness import Cluster


@dataclass
class FaultSchedule:
    """Builder for a scripted fault timeline on one cluster."""

    cluster: "Cluster"
    applied: list[tuple[float, str]] = field(default_factory=list)

    def crash(self, pid: ProcessId, at: float) -> "FaultSchedule":
        self.cluster.world.schedule_crash(pid, at)
        self.applied.append((at, f"crash {pid}"))
        return self

    def recover(self, pid: ProcessId, at: float) -> "FaultSchedule":
        self.cluster.world.schedule_recover(pid, at)
        self.applied.append((at, f"recover {pid}"))
        return self

    def crash_leader(self, at: float) -> "FaultSchedule":
        return self.crash(self.cluster.leader_pid, at)

    def switch_leader(self, new_leader: ProcessId, at: float) -> "FaultSchedule":
        """Instantaneous view change on every replica (manual elector only)."""
        group = self.cluster.manual_electors
        if group is None:
            raise ConfigError("switch_leader requires the 'manual' elector")
        self.cluster.kernel.schedule_at(at, group.set_leader, new_leader)
        self.applied.append((at, f"switch leader -> {new_leader}"))
        return self

    def partition(self, groups: Iterable[Iterable[ProcessId]], at: float) -> "FaultSchedule":
        frozen = [list(g) for g in groups]
        self.cluster.kernel.schedule_at(
            at, self.cluster.network.partitions.partition, frozen
        )
        self.applied.append((at, f"partition {frozen}"))
        return self

    def heal(self, at: float) -> "FaultSchedule":
        self.cluster.kernel.schedule_at(at, self.cluster.network.partitions.heal)
        self.applied.append((at, "heal partition"))
        return self
