"""Fault schedules: scripted crashes, recoveries, partitions, leader
switches, and network disturbance bursts against a running
:class:`repro.cluster.harness.Cluster`.

Actions are applied at absolute simulated times. With the ``manual``
elector, :meth:`FaultSchedule.switch_leader` flips every replica's view at
once (an idealized instantaneous election); with the ``omega`` elector,
crash the leader instead and let the heartbeats time out.

Inputs are validated at schedule-build time (unknown pids, negative times,
double-crash of the same pid at the same instant) so misconfigured fault
scripts fail with a :class:`repro.errors.ConfigError` up front instead of
deep inside the kernel or as a silent no-op. Every applied fault increments
a ``fault.<kind>`` counter in the cluster's metrics registry, so fault
timelines are visible in exported reports.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.harness import Cluster


@dataclass
class FaultSchedule:
    """Builder for a scripted fault timeline on one cluster."""

    cluster: "Cluster"
    applied: list[tuple[float, str]] = field(default_factory=list)
    _crash_times: dict[ProcessId, set[float]] = field(default_factory=dict)
    _recover_times: dict[ProcessId, set[float]] = field(default_factory=dict)

    # ------------------------------------------------------------- validation
    def _validate_time(self, at: float, what: str) -> None:
        if at < 0:
            raise ConfigError(f"{what}: negative time {at}")

    def _validate_pid(self, pid: ProcessId, what: str) -> None:
        if pid not in self.cluster.world.pids:
            raise ConfigError(
                f"{what}: unknown process {pid!r} "
                f"(known: {sorted(self.cluster.world.pids)})"
            )

    def _count(self, kind: str) -> None:
        self.cluster.metrics.counter(f"fault.{kind}").inc()

    # ----------------------------------------------------------------- faults
    def crash(self, pid: ProcessId, at: float) -> "FaultSchedule":
        self._validate_time(at, f"crash {pid}")
        self._validate_pid(pid, "crash")
        times = self._crash_times.setdefault(pid, set())
        if at in times:
            raise ConfigError(
                f"crash {pid!r} at t={at}: already scheduled to crash at that instant"
            )
        times.add(at)
        self.cluster.kernel.schedule_at(at, self._apply_crash, pid)
        self.applied.append((at, f"crash {pid}"))
        return self

    def _apply_crash(self, pid: ProcessId) -> None:
        self._count("crash")
        self.cluster.world.crash(pid)

    def recover(self, pid: ProcessId, at: float) -> "FaultSchedule":
        self._validate_time(at, f"recover {pid}")
        self._validate_pid(pid, "recover")
        times = self._recover_times.setdefault(pid, set())
        if at in times:
            raise ConfigError(
                f"recover {pid!r} at t={at}: already scheduled to recover at that instant"
            )
        times.add(at)
        self.cluster.kernel.schedule_at(at, self._apply_recover, pid)
        self.applied.append((at, f"recover {pid}"))
        return self

    def _apply_recover(self, pid: ProcessId) -> None:
        self._count("recover")
        self.cluster.world.recover(pid)

    def crash_leader(self, at: float) -> "FaultSchedule":
        return self.crash(self.cluster.leader_pid, at)

    def switch_leader(
        self,
        new_leader: ProcessId,
        at: float,
        pids: Iterable[ProcessId] | None = None,
        group: int = 0,
    ) -> "FaultSchedule":
        """Instantaneous view change (manual elector only).

        By default every replica's view flips at once — an idealized
        election. ``pids`` restricts the flip to a subset: during a
        partition, only the side that can run an election learns the new
        leader, while the cut-off minority keeps believing in the old one
        (the split-brain shape nemesis schedules probe for). On a sharded
        cluster ``group`` picks which replication group's leadership
        moves; the other groups keep their leaders.
        """
        self._validate_time(at, f"switch leader -> {new_leader}")
        self._validate_pid(new_leader, "switch_leader")
        scope = None if pids is None else tuple(pids)
        if scope is not None:
            for pid in scope:
                self._validate_pid(pid, "switch_leader scope")
        if self.cluster.manual_electors is None:
            raise ConfigError("switch_leader requires the 'manual' elector")
        electors = self.cluster.manual_electors_for(group)
        self.cluster.kernel.schedule_at(
            at, self._apply_switch, electors, new_leader, scope
        )
        where = "" if scope is None else f" on {','.join(scope)}"
        shard = "" if group == 0 else f" [g{group}]"
        self.applied.append((at, f"switch leader -> {new_leader}{where}{shard}"))
        return self

    def _apply_switch(self, group, new_leader: ProcessId, scope) -> None:
        self._count("leader_switch")
        group.set_leader(new_leader, pids=scope)

    def partition(self, groups: Iterable[Iterable[ProcessId]], at: float) -> "FaultSchedule":
        frozen = [list(g) for g in groups]
        self._validate_time(at, f"partition {frozen}")
        for group in frozen:
            for pid in group:
                self._validate_pid(pid, "partition")
        self.cluster.kernel.schedule_at(at, self._apply_partition, frozen)
        self.applied.append((at, f"partition {frozen}"))
        return self

    def _apply_partition(self, frozen: list[list[ProcessId]]) -> None:
        self._count("partition")
        self.cluster.network.partitions.partition(frozen)

    def heal(self, at: float) -> "FaultSchedule":
        self._validate_time(at, "heal")
        self.cluster.kernel.schedule_at(at, self._apply_heal)
        self.applied.append((at, "heal partition"))
        return self

    def _apply_heal(self) -> None:
        self._count("heal")
        self.cluster.network.partitions.heal()

    # --------------------------------------------------------- storage faults
    def _validate_replica(self, pid: ProcessId, what: str) -> None:
        self._validate_pid(pid, what)
        if pid not in self.cluster.replicas:
            raise ConfigError(f"{what}: {pid!r} is not a replica (no stable storage)")

    def torn_write(self, pid: ProcessId, at: float) -> "FaultSchedule":
        """Arm a torn write on ``pid``'s device: at its next crash, the
        first unsynced WAL record lands on the platter truncated (replay
        drops it via the CRC check)."""
        self._validate_time(at, f"torn_write {pid}")
        self._validate_replica(pid, "torn_write")
        self.cluster.kernel.schedule_at(at, self._apply_torn_write, pid)
        self.applied.append((at, f"torn write armed on {pid}"))
        return self

    def _apply_torn_write(self, pid: ProcessId) -> None:
        self._count("torn_write")
        self.cluster.replicas[pid].store.inject_torn_write()

    def lost_fsync(self, pid: ProcessId, at: float, duration: float) -> "FaultSchedule":
        """During [at, at + duration), ``pid``'s fsyncs acknowledge without
        persisting. Crashing with such lied-about records outstanding
        poisons the device (the replica fail-stops on recovery); an honest
        fsync after the window closes the hazard."""
        self._validate_time(at, f"lost_fsync {pid}")
        self._validate_replica(pid, "lost_fsync")
        if duration <= 0:
            raise ConfigError(f"lost_fsync {pid}: duration must be > 0, got {duration}")
        self.cluster.kernel.schedule_at(at, self._apply_lost_fsync, pid, duration)
        self.applied.append((at, f"lost fsync on {pid} for {duration}"))
        return self

    def _apply_lost_fsync(self, pid: ProcessId, duration: float) -> None:
        self._count("lost_fsync")
        self.cluster.replicas[pid].store.inject_lost_fsync(duration)

    def disk_stall(
        self, pid: ProcessId, at: float, duration: float, extra: float
    ) -> "FaultSchedule":
        """Add ``extra`` seconds to every fsync ``pid`` starts during
        [at, at + duration) — a slow device, not a lying one."""
        self._validate_time(at, f"disk_stall {pid}")
        self._validate_replica(pid, "disk_stall")
        if duration <= 0:
            raise ConfigError(f"disk_stall {pid}: duration must be > 0, got {duration}")
        if extra <= 0:
            raise ConfigError(f"disk_stall {pid}: extra must be > 0, got {extra}")
        self.cluster.kernel.schedule_at(at, self._apply_disk_stall, pid, duration, extra)
        self.applied.append((at, f"disk stall on {pid} for {duration} (+{extra})"))
        return self

    def _apply_disk_stall(self, pid: ProcessId, duration: float, extra: float) -> None:
        self._count("disk_stall")
        self.cluster.replicas[pid].store.inject_disk_stall(duration, extra)

    def corrupt_record(self, pid: ProcessId, at: float, fraction: float) -> "FaultSchedule":
        """Rot one already-durable WAL record at ``fraction`` of ``pid``'s
        log. Harmless until the replica restarts and replay hits the bad
        CRC mid-log — then it fail-stops rather than rejoin with holes."""
        self._validate_time(at, f"corrupt_record {pid}")
        self._validate_replica(pid, "corrupt_record")
        if not 0.0 <= fraction <= 1.0:
            raise ConfigError(
                f"corrupt_record {pid}: fraction must be in [0, 1], got {fraction}"
            )
        self.cluster.kernel.schedule_at(at, self._apply_corrupt_record, pid, fraction)
        self.applied.append((at, f"corrupt record on {pid} at {fraction:.2f}"))
        return self

    def _apply_corrupt_record(self, pid: ProcessId, fraction: float) -> None:
        self._count("corrupt_record")
        self.cluster.replicas[pid].store.inject_corruption(fraction)

    # ----------------------------------------------------- disturbance bursts
    def loss_burst(self, rate: float, at: float, duration: float) -> "FaultSchedule":
        """Drop ``rate`` of all messages during [at, at + duration)."""
        return self._burst(at, duration, f"loss burst {rate}", loss=rate)

    def dup_burst(self, rate: float, at: float, duration: float) -> "FaultSchedule":
        """Duplicate ``rate`` of all messages during [at, at + duration)."""
        return self._burst(at, duration, f"dup burst {rate}", duplicate=rate)

    def latency_spike(self, extra: float, at: float, duration: float) -> "FaultSchedule":
        """Add ``extra`` seconds to every delivery during [at, at + duration)."""
        return self._burst(at, duration, f"latency spike {extra}", extra_latency=extra)

    def _burst(self, at: float, duration: float, label: str, **fields: float) -> "FaultSchedule":
        self._validate_time(at, label)
        if duration <= 0:
            raise ConfigError(f"{label}: duration must be > 0, got {duration}")
        network = self.cluster.network
        installed: list[object] = []

        def begin() -> None:
            self._count("burst")
            network.set_disturbance(**fields)
            installed.append(network.disturbance)

        def end() -> None:
            # Only clear if our disturbance is still the installed one — a
            # later overlapping burst replaces it and owns its own clearing.
            if installed and network.disturbance is installed[0]:
                network.clear_disturbance()

        self.cluster.kernel.schedule_at(at, begin)
        self.cluster.kernel.schedule_at(at + duration, end)
        self.applied.append((at, label))
        return self
