"""Canned runners for the paper's experiments (§4).

Each function builds a cluster against a named profile, runs the paper's
workload shape, and returns the collected :class:`RunResult`. These are
the building blocks the benchmark suite (one bench per table/figure) and
EXPERIMENTS.md generation are written in terms of.
"""

from __future__ import annotations

from typing import Any

from repro.client.workload import paper_txn_steps, single_kind_steps
from repro.cluster.harness import Cluster, ClusterSpec
from repro.cluster.metrics import RunResult, collect
from repro.net.profiles import NetworkProfile, get_profile
from repro.types import RequestKind


def _resolve_profile(profile: str | NetworkProfile) -> NetworkProfile:
    if isinstance(profile, NetworkProfile):
        return profile
    return get_profile(profile)


def _resolve_kind(kind: str | RequestKind) -> RequestKind:
    if isinstance(kind, RequestKind):
        return kind
    return RequestKind(kind)


def rrt_scenario(
    profile: str | NetworkProfile,
    kind: str | RequestKind,
    samples: int = 200,
    seed: int = 0,
    **spec_overrides: Any,
) -> RunResult:
    """Request response time: one closed-loop client, ``samples`` requests
    (the paper used 1 client x 20 requests x hundreds of sample runs; one
    long run gives the same mean with tighter machinery)."""
    profile = _resolve_profile(profile)
    kind = _resolve_kind(kind)
    spec = ClusterSpec(profile=profile, seed=seed, **spec_overrides)
    steps = single_kind_steps(kind, samples)
    cluster = Cluster(spec, [steps])
    cluster.run()
    return collect(cluster)


def throughput_scenario(
    profile: str | NetworkProfile,
    kind: str | RequestKind,
    n_clients: int,
    total_requests: int = 1000,
    seed: int = 0,
    **spec_overrides: Any,
) -> RunResult:
    """Service throughput: ``n_clients`` concurrent closed-loop clients,
    each sending ``total_requests / n_clients`` requests (§4: "each client
    sends exactly 1000/c requests")."""
    profile = _resolve_profile(profile)
    kind = _resolve_kind(kind)
    per_client = max(1, total_requests // n_clients)
    spec = ClusterSpec(profile=profile, seed=seed, **spec_overrides)
    steps = [single_kind_steps(kind, per_client) for _ in range(n_clients)]
    cluster = Cluster(spec, steps)
    cluster.run()
    return collect(cluster)


def txn_rrt_scenario(
    mode: str,
    requests_per_txn: int,
    samples: int = 100,
    profile: str | NetworkProfile = "sysnet",
    seed: int = 0,
    **spec_overrides: Any,
) -> RunResult:
    """Transaction response time (Table 1): one client, ``samples``
    transactions of ``mode`` in {read_write, write_only, optimized}."""
    profile = _resolve_profile(profile)
    spec = ClusterSpec(profile=profile, seed=seed, **spec_overrides)
    steps = paper_txn_steps(mode, requests_per_txn, samples)
    cluster = Cluster(spec, [steps])
    cluster.run()
    return collect(cluster)


def txn_throughput_scenario(
    mode: str,
    requests_per_txn: int,
    n_clients: int,
    total_txns: int = 500,
    profile: str | NetworkProfile = "sysnet",
    seed: int = 0,
    **spec_overrides: Any,
) -> RunResult:
    """Transaction throughput (Fig. 9): ``n_clients`` concurrent clients
    splitting ``total_txns`` transactions."""
    profile = _resolve_profile(profile)
    per_client = max(1, total_txns // n_clients)
    spec = ClusterSpec(profile=profile, seed=seed, **spec_overrides)
    steps = [paper_txn_steps(mode, requests_per_txn, per_client) for _ in range(n_clients)]
    cluster = Cluster(spec, steps)
    cluster.run()
    return collect(cluster)
