"""Result collection for harness runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.stats import Summary, summarize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.harness import Cluster


@dataclass(frozen=True)
class RunResult:
    """Aggregate measurements of one harness run.

    Times are seconds; throughputs are per second. ``throughput`` counts
    individual requests (Figs. 5–8), ``step_throughput`` counts completed
    steps — i.e. transactions for transaction workloads (Fig. 9).
    """

    n_clients: int
    duration: float
    total_requests: int
    total_steps: int
    aborted_steps: int
    total_retransmits: int
    rrt: Summary | None
    trt: Summary | None
    #: Message accounting, read from the cluster's metrics registry (zeros
    #: when the run had ``metrics=False``).
    total_messages: int = 0
    total_dropped: int = 0
    total_bytes: int = 0
    #: ``(message type, sent count)`` pairs, descending by count.
    messages_by_type: tuple[tuple[str, int], ...] = ()

    @property
    def throughput(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.total_requests / self.duration

    @property
    def step_throughput(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.total_steps / self.duration

    def describe(self) -> str:
        lines = [
            f"clients={self.n_clients} duration={self.duration * 1e3:.3f}ms "
            f"requests={self.total_requests} throughput={self.throughput:.1f}/s",
        ]
        if self.rrt is not None:
            lines.append(
                f"RRT mean={self.rrt.mean * 1e3:.3f}ms ±{self.rrt.ci99 * 1e3:.3f}ms (99% CI)"
            )
        if self.trt is not None:
            lines.append(
                f"TRT mean={self.trt.mean * 1e3:.3f}ms ±{self.trt.ci99 * 1e3:.3f}ms (99% CI) "
                f"txn throughput={self.step_throughput:.1f}/s aborted={self.aborted_steps}"
            )
        if self.total_messages:
            per_req = self.total_messages / self.total_requests if self.total_requests else 0.0
            line = (
                f"messages={self.total_messages} ({per_req:.1f}/req) "
                f"dropped={self.total_dropped}"
            )
            if self.total_bytes:
                line += f" bytes={self.total_bytes}"
            lines.append(line)
        return "\n".join(lines)


def collect(cluster: "Cluster") -> RunResult:
    """Summarize a finished run."""
    clients = cluster.clients
    starts = [c.started_at for c in clients if c.started_at is not None]
    ends = [c.finished_at for c in clients if c.finished_at is not None]
    duration = (max(ends) - min(starts)) if starts and ends else 0.0

    rrts: list[float] = []
    trts: list[float] = []
    total_requests = 0
    total_steps = 0
    aborted = 0
    retransmits = 0
    for client in clients:
        rrts.extend(client.rrts())
        trts.extend(client.trts())
        total_requests += client.completed_requests
        total_steps += client.completed_steps
        aborted += sum(1 for s in client.records if s.aborted)
        retransmits += sum(r.retransmits for r in client.request_records())

    registry = cluster.metrics
    sends = registry.counters("msg.send.")
    by_type = tuple(
        (name[len("msg.send."):], value)
        for name, value in sorted(sends.items(), key=lambda item: (-item[1], item[0]))
    )

    return RunResult(
        n_clients=len(clients),
        duration=duration,
        total_requests=total_requests,
        total_steps=total_steps,
        aborted_steps=aborted,
        total_retransmits=retransmits,
        rrt=summarize(rrts) if rrts else None,
        trt=summarize(trts) if trts else None,
        total_messages=sum(sends.values()),
        total_dropped=sum(registry.counters("msg.drop.").values()),
        total_bytes=sum(registry.counters("msg.send_bytes.").values()),
        messages_by_type=by_type,
    )
