"""Build and run one simulated deployment.

Reproduces the §4 experimental procedure: replicas and clients are placed
according to a :class:`repro.net.profiles.NetworkProfile`; after the world
starts, a starter co-located with the leader broadcasts the
:class:`repro.core.messages.StartSignal` "to all the clients simultaneously
to ensure that the client processes start at (roughly) the same time";
each client then works through its closed-loop step list.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.client.client import Client
from repro.client.workload import Step
from repro.core.config import ReplicaConfig
from repro.core.messages import StartSignal
from repro.core.replica import Replica
from repro.election.omega import OmegaElector
from repro.election.static import ManualElectorGroup, StaticElector
from repro.errors import ConfigError, SimulationError
from repro.net.network import SimNetwork
from repro.net.profiles import NetworkProfile
from repro.obs.prof.profiler import NULL_PROFILER, NullProfiler, SimProfiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer
from repro.services.base import Service
from repro.services.noop import NoopService
from repro.shard.host import GroupHost
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder
from repro.sim.world import World
from repro.types import ProcessId, StateTransferMode


class Starter(Process):
    """Broadcasts the start signal at a fixed time (stands next to the
    leader, so signal skew equals the paper's leader-to-client latency).

    The signal is re-broadcast a bounded number of times so lossy-network
    experiments still start; clients ignore duplicates.
    """

    def __init__(
        self,
        pid: ProcessId,
        clients: Sequence[ProcessId],
        at: float,
        repeat_interval: float = 0.2,
        repeats: int = 100,
    ) -> None:
        super().__init__(pid)
        self.clients = tuple(clients)
        self.at = at
        self.repeat_interval = repeat_interval
        self.repeats = repeats

    def on_start(self) -> None:
        self.set_timer(self.at, self._fire, self.repeats)

    def _fire(self, remaining: int) -> None:
        self.broadcast(self.clients, StartSignal())
        if remaining > 0:
            self.set_timer(self.repeat_interval, self._fire, remaining - 1)


@dataclass(frozen=True)
class ClusterSpec:
    """Everything needed to build one deployment."""

    profile: NetworkProfile
    n_replicas: int = 3
    seed: int = 0
    #: Replication groups (shards) per process. 1 builds the classic
    #: standalone :class:`~repro.core.replica.Replica` processes —
    #: byte-identical to the unsharded simulator. >1 builds
    #: :class:`~repro.shard.host.GroupHost` processes, each hosting one
    #: replica of every group on a shared storage pump, with group ``g``'s
    #: initial leader at replica ``g % n_replicas``.
    groups: int = 1
    state_mode: StateTransferMode = StateTransferMode.FULL
    xpaxos_reads: bool = True
    tpaxos: bool = True
    execute_time: float = 0.0
    checkpoint_interval: int = 100
    accept_retry: float = 0.5
    prepare_retry: float = 0.1
    client_timeout: float = 1.0
    #: Client retransmission backoff (see :class:`repro.client.client.Client`):
    #: multiplier per unanswered retransmit, cap on the grown timeout
    #: (``None`` = 10x the base timeout), and seeded jitter fraction.
    client_backoff: float = 2.0
    client_timeout_cap: float | None = None
    client_jitter: float = 0.1
    retry_aborted: bool = False
    max_abort_retries: int = 10
    #: Idle-transaction expiry (see :class:`repro.core.config.ReplicaConfig`).
    txn_timeout: float = 2.0
    #: "static" (benchmark default), "manual" (fault tests), "omega".
    elector: str = "static"
    omega_heartbeat: float = 0.05
    omega_timeout: float = 0.25
    #: Scale per-message CPU with the client count (Fig. 6's contention).
    connection_scaling: bool = True
    start_at: float = 0.001
    trace: bool = False
    #: Causal request tracing (:mod:`repro.obs.tracing`): one span tree per
    #: client request, from submit to reply. Passive like metrics — a traced
    #: run is byte-identical to a bare one (tests/integration/test_tracing.py).
    tracing: bool = False
    #: Record counters/histograms into a :class:`repro.obs.MetricsRegistry`.
    #: On by default so every harness run (and benchmark) gets per-message
    #: accounting for free; recording is passive and cannot perturb the
    #: schedule (see tests/integration/test_obs_determinism.py).
    metrics: bool = True
    #: Also account encoded wire bytes per message type (one pickle per
    #: send — the only instrumentation with measurable host-CPU cost).
    measure_bytes: bool = True
    #: Sim-profiler (:mod:`repro.obs.prof`): folded-stack sim-CPU / host-time
    #: attribution per actor, handler, and message type. Passive like the
    #: tracer — a profiled run is byte-identical to a bare one
    #: (tests/integration/test_profiler.py) — and zero-overhead when off.
    profiling: bool = False
    #: Virtual-time period of the profiler's counter track (seconds).
    profile_sample_interval: float = 0.01
    #: Stable-storage durability mode (:mod:`repro.storage`): ``async``
    #: (legacy zero-latency durability, byte-identical to pre-storage
    #: runs), ``sync`` or ``group``.
    fsync: str = "async"
    #: Modeled fsync device latency / group-commit window (seconds).
    fsync_latency: float = 5e-4
    group_commit_interval: float = 2e-3
    #: Maintain the chosen-rid fold in checkpoints (the acked-durability
    #: invariant needs it; off by default — it grows with the run).
    track_commits: bool = False

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ConfigError("need at least one replica")
        if self.groups < 1:
            raise ConfigError("need at least one replication group")
        if self.elector not in ("static", "manual", "omega"):
            raise ConfigError(f"unknown elector kind {self.elector!r}")
        if self.fsync not in ("sync", "group", "async"):
            raise ConfigError(f"unknown fsync mode {self.fsync!r}")


class Cluster:
    """One wired-up deployment, ready to run."""

    def __init__(
        self,
        spec: ClusterSpec,
        client_steps: Sequence[Sequence[Step]],
        service_factory: Callable[[], Service] = NoopService,
    ) -> None:
        self.spec = spec
        n_clients = len(client_steps)
        if n_clients < 1:
            raise ConfigError("need at least one client (give it an empty step list)")

        self.replica_pids = tuple(f"r{i}" for i in range(spec.n_replicas))
        self.client_pids = tuple(f"c{i}" for i in range(n_clients))
        starter_pid = "starter"

        profile = spec.profile
        topology = profile.build_topology(self.replica_pids, self.client_pids)
        # The starter stands next to the leader (the paper's leader sends
        # the start signal).
        topology.place(starter_pid, topology.site_of(self.replica_pids[0]))

        self.network = SimNetwork(topology, seed=spec.seed)
        self.kernel = Kernel(seed=spec.seed)
        self.trace = TraceRecorder() if spec.trace else None
        self.metrics: MetricsRegistry = MetricsRegistry() if spec.metrics else NULL_REGISTRY
        self.network.metrics = self.metrics
        self.kernel.metrics = self.metrics
        self.tracer: Tracer | NullTracer = (
            Tracer(clock=lambda: self.kernel.now) if spec.tracing else NULL_TRACER
        )
        self.profiler: SimProfiler | NullProfiler = (
            SimProfiler(
                clock=lambda: self.kernel.now,
                sample_interval=spec.profile_sample_interval,
            )
            if spec.profiling
            else NULL_PROFILER
        )
        if self.profiler.enabled:
            for pid in self.replica_pids:
                self.profiler.register_actor(pid, "replica")
            for pid in self.client_pids:
                self.profiler.register_actor(pid, "client")
            self.profiler.register_actor(starter_pid, "other")
        self.kernel.profiler = self.profiler
        self.world = World(
            self.kernel,
            self.network,
            trace=self.trace,
            metrics=self.metrics,
            measure_bytes=spec.measure_bytes,
            tracer=self.tracer,
            profiler=self.profiler,
        )

        config = ReplicaConfig(
            peers=self.replica_pids,
            state_mode=spec.state_mode,
            xpaxos_reads=spec.xpaxos_reads,
            tpaxos=spec.tpaxos,
            accept_retry=spec.accept_retry,
            prepare_retry=spec.prepare_retry,
            checkpoint_interval=spec.checkpoint_interval,
            execute_time=spec.execute_time,
            txn_timeout=spec.txn_timeout,
            fsync_mode=spec.fsync,
            fsync_latency=spec.fsync_latency,
            group_commit_interval=spec.group_commit_interval,
            track_commits=spec.track_commits,
        )
        self.config = config

        #: Initial leader of each group, spread round-robin over replicas
        #: so sharding actually distributes leader work.
        self.group_leader_pids = tuple(
            self.replica_pids[g % spec.n_replicas] for g in range(spec.groups)
        )
        self.manual_electors: ManualElectorGroup | None = None
        self.manual_electors_by_group: dict[int, ManualElectorGroup] = {}
        if spec.elector == "manual":
            for g in range(spec.groups):
                self.manual_electors_by_group[g] = ManualElectorGroup(
                    self.group_leader_pids[g]
                )
            self.manual_electors = self.manual_electors_by_group[0]

        replica_cpu = profile.replica_cpu
        if spec.connection_scaling:
            replica_cpu = profile.replica_cpu_for(n_clients)

        self.replicas: dict[ProcessId, Replica | GroupHost] = {}
        if spec.groups == 1:
            for pid in self.replica_pids:
                if spec.elector == "static":
                    elector = StaticElector(self.leader_pid)
                elif spec.elector == "manual":
                    assert self.manual_electors is not None
                    elector = self.manual_electors.elector_for(pid)
                else:
                    elector = OmegaElector(
                        heartbeat_interval=spec.omega_heartbeat,
                        suspect_timeout=spec.omega_timeout,
                    )
                replica = Replica(pid, config, service_factory, elector)
                replica.metrics = self.metrics.scope(pid)
                replica.tracer = self.tracer
                replica.profiler = self.profiler
                self.world.add(replica, cpu=replica_cpu)
                self.replicas[pid] = replica
        else:
            for pid in self.replica_pids:
                electors: dict[int, object] = {}
                for g in range(spec.groups):
                    if spec.elector == "static":
                        electors[g] = StaticElector(self.group_leader_pids[g])
                    elif spec.elector == "manual":
                        electors[g] = self.manual_electors_by_group[g].elector_for(pid)
                    else:
                        electors[g] = OmegaElector(
                            heartbeat_interval=spec.omega_heartbeat,
                            suspect_timeout=spec.omega_timeout,
                        )
                host = GroupHost(pid, config, service_factory, electors)
                host.metrics = self.metrics.scope(pid)
                host.tracer = self.tracer
                host.profiler = self.profiler
                for g, group in host.groups.items():
                    group.metrics = self.metrics.scope(f"{pid}.g{g}")
                    group.tracer = self.tracer
                    group.profiler = self.profiler
                self.world.add(host, cpu=replica_cpu)
                self.replicas[pid] = host

        self.clients: list[Client] = []
        for pid, steps in zip(self.client_pids, client_steps, strict=True):
            client = Client(
                pid,
                replicas=self.replica_pids,
                steps=steps,
                timeout=spec.client_timeout,
                wait_for_start=True,
                retry_aborted=spec.retry_aborted,
                max_abort_retries=spec.max_abort_retries,
                backoff=spec.client_backoff,
                timeout_cap=spec.client_timeout_cap,
                jitter=spec.client_jitter,
            )
            client.tracer = self.tracer
            client.metrics = self.metrics
            self.world.add(client, cpu=profile.client_cpu)
            self.clients.append(client)

        self.starter = Starter(starter_pid, self.client_pids, at=spec.start_at)
        self.world.add(self.starter, cpu=profile.client_cpu)

        self._started = False

    # ---------------------------------------------------------------- running
    @property
    def leader_pid(self) -> ProcessId:
        """The initial/benchmark leader: the first replica (as in §4's WAN
        configuration, where the leader ran at UIUC)."""
        return self.replica_pids[0]

    def leader(self) -> "Replica | GroupHost":
        return self.replicas[self.leader_pid]

    def manual_electors_for(self, group: int) -> ManualElectorGroup:
        """Group ``group``'s manual-elector group (manual elector only)."""
        if not self.manual_electors_by_group:
            raise ConfigError("manual_electors_for requires the 'manual' elector")
        return self.manual_electors_by_group[group]

    @property
    def all_done(self) -> bool:
        return all(c.done for c in self.clients)

    def run(self, max_time: float = 600.0, check_interval: float = 0.05) -> "Cluster":
        """Run until every client finished its steps (or ``max_time``)."""
        if not self._started:
            self.world.start()
            self._started = True
        while not self.all_done:
            if self.kernel.now >= max_time:
                unfinished = [c.pid for c in self.clients if not c.done]
                raise SimulationError(
                    f"run exceeded max_time={max_time}s with unfinished "
                    f"clients {unfinished} at t={self.kernel.now:.3f}s"
                )
            self.kernel.run(until=min(self.kernel.now + check_interval, max_time))
        return self

    def start(self) -> "Cluster":
        """Start the world without running (for fault-schedule composition)."""
        if not self._started:
            self.world.start()
            self._started = True
        return self

    # ---------------------------------------------------------------- queries
    def replica_fingerprints(self) -> dict[ProcessId, object]:
        """Service-state digests of all *alive* replicas (convergence checks).

        Note: backups converge to the leader's state as of their applied
        frontier; immediately after a run every committed instance has been
        broadcast, so after the pipeline drains these should be equal.
        Sharded clusters report one fingerprint per hosted group, keyed
        ``pid/g<group>``.
        """
        out: dict[ProcessId, object] = {}
        for pid, r in self.replicas.items():
            if not r.alive:
                continue
            if isinstance(r, GroupHost):
                for g in sorted(r.groups):
                    group = r.groups[g]
                    if group.alive:
                        out[f"{pid}/g{g}"] = group.service.state_fingerprint()
            else:
                out[pid] = r.service.state_fingerprint()
        return out

    def drain(self, grace: float = 2.0) -> "Cluster":
        """Run a little longer so Chosen broadcasts reach every backup."""
        self.kernel.run(until=self.kernel.now + grace)
        return self

    def export_timeline(self, path: str, include_events: bool = True) -> str:
        """Write this run's metrics (and trace/spans, if recorded) as a JSONL
        timeline readable by ``repro report`` — see :mod:`repro.obs.timeline`."""
        from repro.obs.timeline import export_run  # local import: cycle guard

        return str(export_run(self, path, include_events=include_events))

    def export_chrome(self, path: str) -> str:
        """Write the causal spans as a Chrome trace-event file (load it at
        ``ui.perfetto.dev`` or ``chrome://tracing``). Requires
        ``ClusterSpec.tracing=True``; with ``profiling=True`` the profiler's
        deterministic counter track rides along as Perfetto counter rows."""
        from repro.obs.chrome import export_chrome  # local import: cycle guard

        if not self.tracer.enabled:
            raise ConfigError("chrome export needs ClusterSpec(tracing=True)")
        counters = None
        if self.profiler.enabled:
            from repro.obs.prof.export import counter_samples

            counters = counter_samples(self.profiler)
        return str(
            export_chrome(
                self.tracer.store, path, horizon=self.kernel.now, counters=counters
            )
        )
