"""Experiment harness: wire replicas + clients over a profile and run.

* :mod:`repro.cluster.harness` — :class:`Cluster`: build and run one
  deployment in the simulator.
* :mod:`repro.cluster.metrics` — result collection (RRT/TRT summaries,
  throughput).
* :mod:`repro.cluster.faults` — crash/recover/partition/leader-switch
  schedules.
* :mod:`repro.cluster.scenarios` — canned runners for each paper
  experiment (used by the benchmarks and by EXPERIMENTS.md).
"""

from repro.cluster.faults import FaultSchedule
from repro.cluster.harness import Cluster, ClusterSpec
from repro.cluster.metrics import RunResult, collect

__all__ = [
    "Cluster",
    "ClusterSpec",
    "FaultSchedule",
    "RunResult",
    "collect",
]
