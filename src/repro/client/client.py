"""The closed-loop test client (§4).

"Each request is sent to all service replicas, and only the leader replica
sends a reply to the client process. A client will not send a new request
until it receives the reply associated with the previous one."

The client starts on a :class:`repro.core.messages.StartSignal` (the paper's
leader-broadcast start marker) or immediately if ``wait_for_start=False``.
It retransmits unanswered requests on a timeout — this is what re-drives a
request to a new leader after a switch. Per-request and per-step
(transaction) timings are recorded for the harness.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.client.workload import Step
from repro.core.messages import Reply, StartSignal
from repro.core.requests import ClientRequest, RequestId
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import Span
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer
from repro.sim.process import Process
from repro.types import ProcessId, ReplyStatus, RequestKind


@dataclass(slots=True)
class RequestRecord:
    """Timing record for one request."""

    rid: RequestId
    kind: RequestKind
    sent_at: float
    op: Any = None
    completed_at: float | None = None
    status: ReplyStatus | None = None
    value: Any = None
    retransmits: int = 0

    @property
    def rrt(self) -> float:
        """Request response time, seconds."""
        assert self.completed_at is not None, f"{self.rid} never completed"
        return self.completed_at - self.sent_at


@dataclass(slots=True)
class StepRecord:
    """Timing record for one step (= one transaction for txn workloads)."""

    label: str
    started_at: float
    completed_at: float | None = None
    aborted: bool = False
    requests: list[RequestRecord] = field(default_factory=list)

    @property
    def trt(self) -> float:
        """Transaction (step) response time, seconds."""
        assert self.completed_at is not None, f"step {self.label} never completed"
        return self.completed_at - self.started_at


class Client(Process):
    """Closed-loop client executing a list of steps."""

    def __init__(
        self,
        pid: ProcessId,
        replicas: Sequence[ProcessId],
        steps: Sequence[Step],
        timeout: float = 1.0,
        wait_for_start: bool = True,
        retry_aborted: bool = False,
        max_abort_retries: int = 10,
        backoff: float = 2.0,
        timeout_cap: float | None = None,
        jitter: float = 0.1,
    ) -> None:
        super().__init__(pid)
        self.replicas = tuple(replicas)
        self.steps = list(steps)
        self.timeout = timeout
        self.wait_for_start = wait_for_start
        self.retry_aborted = retry_aborted
        self.max_abort_retries = max_abort_retries
        #: Retransmission backoff: each unanswered retransmit multiplies the
        #: current timeout by ``backoff``, capped at ``timeout_cap`` (default
        #: 10x the base timeout). ``jitter`` adds a seeded random fraction on
        #: top so synchronized clients desynchronize under sustained faults
        #: instead of retransmitting in lockstep. ``backoff=1.0, jitter=0.0``
        #: restores the old fixed-interval behaviour.
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {backoff}")
        if jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.backoff = backoff
        self.timeout_cap = timeout_cap if timeout_cap is not None else 10.0 * timeout
        self.jitter = jitter

        self.records: list[StepRecord] = []
        self.done = False
        self.started_at: float | None = None
        self.finished_at: float | None = None

        self._seq = 0
        self._step_index = 0
        self._req_index = 0
        self._attempt = 0
        self._txn_id: str | None = None
        self._current: RequestRecord | None = None
        self._current_request: ClientRequest | None = None
        self._gap_taken = False
        self._timer = None
        self._timeout_current = timeout
        #: Observability sink (set by the harness): retransmits are counted
        #: under ``client.retransmit`` so fault runs expose retry pressure.
        self.metrics: MetricsRegistry = NULL_REGISTRY
        #: Causal tracing (set by the harness). Each request opens a root
        #: trace span: submit -> matching Reply.
        self.tracer: Tracer | NullTracer = NULL_TRACER
        self._span: Span | None = None

    # ------------------------------------------------------------- lifecycle
    def on_start(self) -> None:
        if not self.wait_for_start:
            self._begin()

    def on_message(self, src: ProcessId, msg: Any) -> None:
        if isinstance(msg, StartSignal):
            if self.started_at is None:
                self._begin()
            return
        if isinstance(msg, Reply):
            self._on_reply(src, msg)

    def _begin(self) -> None:
        self.started_at = self.now
        self._next_step()

    # ------------------------------------------------------------ step engine
    def _next_step(self) -> None:
        if self._step_index >= len(self.steps):
            self._finish()
            return
        step = self.steps[self._step_index]
        if step.gap > 0 and not self._gap_taken:
            # Think time: pace the workload so it spans a fault schedule's
            # whole horizon instead of finishing in the first few ms.
            self._gap_taken = True
            self.set_timer(step.gap, self._next_step)
            return
        self._gap_taken = False
        self._req_index = 0
        self._txn_id = (
            f"{self.pid}:{self._step_index}:{self._attempt}" if step.transactional else None
        )
        self.records.append(StepRecord(label=step.label, started_at=self.now))
        self._send_current()

    def _send_current(self) -> None:
        step = self.steps[self._step_index]
        kind, op = step.requests[self._req_index]
        rid = RequestId(self.pid, self._seq)
        self._seq += 1
        # TXN_OP: its 0-based position in the transaction; TXN_COMMIT: the
        # op count — lets a new leader detect an orphaned prefix (§3.6).
        txn_seq = sum(
            1
            for k, _o in step.requests[: self._req_index]
            if k is RequestKind.TXN_OP
        )
        request = ClientRequest(rid=rid, kind=kind, op=op, txn=self._txn_id, txn_seq=txn_seq)
        self._current_request = request
        self._current = RequestRecord(rid=rid, kind=kind, sent_at=self.now, op=op)
        self._timeout_current = self.timeout  # backoff resets per fresh request
        self.records[-1].requests.append(self._current)
        tracer = self.tracer
        if tracer.enabled:
            self._span = tracer.start_trace(
                f"request:{rid}", pid=self.pid, kind="request",
                attrs={"rid": str(rid), "kind": kind.value, "step": step.label},
            )
        token = tracer.activate(self._span)
        try:
            self.broadcast(self.replicas, request)
            self._arm_timer()
        finally:
            tracer.restore(token)

    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        delay = self._timeout_current
        if self.jitter:
            delay *= 1.0 + self.jitter * self.rng.random()
        self._timer = self.set_timer(delay, self._retransmit)

    def _retransmit(self) -> None:
        if self._current is None or self._current.completed_at is not None:
            return
        assert self._current_request is not None
        self._current.retransmits += 1
        self.metrics.counter("client.retransmit").inc()
        self._timeout_current = min(self.timeout_cap, self._timeout_current * self.backoff)
        if self._span is not None:
            self._span.attrs["retransmits"] = self._current.retransmits
        token = self.tracer.activate(self._span)
        try:
            self.broadcast(self.replicas, self._current_request)
            self._arm_timer()
        finally:
            self.tracer.restore(token)

    def _on_reply(self, src: ProcessId, reply: Reply) -> None:
        current = self._current
        if current is None or reply.rid != current.rid:
            return  # stale or duplicate reply
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        current.completed_at = self.now
        current.status = reply.status
        current.value = reply.value
        self._current = None
        self._current_request = None
        self.tracer.end(
            self._span,
            status="ok" if reply.status is ReplyStatus.OK else reply.status.value,
        )
        self._span = None

        step = self.steps[self._step_index]
        record = self.records[-1]
        if reply.status is ReplyStatus.ABORTED and step.transactional:
            record.completed_at = self.now
            record.aborted = True
            if self.retry_aborted and self._attempt < self.max_abort_retries:
                self._attempt += 1
                self._next_step()  # same step index: retry with a fresh txn id
            else:
                self._attempt = 0
                self._step_index += 1
                self._next_step()
            return

        self._req_index += 1
        if self._req_index < len(step.requests):
            self._send_current()
            return
        record.completed_at = self.now
        self._attempt = 0
        self._step_index += 1
        self._next_step()

    def _finish(self) -> None:
        self.done = True
        self.finished_at = self.now

    # ---------------------------------------------------------------- results
    def request_records(self) -> list[RequestRecord]:
        return [r for step in self.records for r in step.requests]

    def rrts(self) -> list[float]:
        """Response times of completed requests, seconds."""
        return [
            r.rrt for r in self.request_records() if r.completed_at is not None
        ]

    def trts(self, include_aborted: bool = False) -> list[float]:
        """Step (transaction) response times of completed steps, seconds."""
        return [
            s.trt
            for s in self.records
            if s.completed_at is not None and (include_aborted or not s.aborted)
        ]

    @property
    def completed_requests(self) -> int:
        return sum(1 for r in self.request_records() if r.completed_at is not None)

    @property
    def completed_steps(self) -> int:
        return sum(1 for s in self.records if s.completed_at is not None and not s.aborted)
