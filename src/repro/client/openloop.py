"""An open-loop (Poisson) client.

The paper's experiments are closed-loop (clients wait for each reply). An
open-loop client fires requests at exponential inter-arrival times at a
configured rate regardless of completions — the standard way to measure a
latency-vs-offered-load curve (the "hockey stick") and locate the
saturation point independently of the client count. Used by the
``bench_latency_throughput`` ablation.

No retransmission: this client is for failure-free load studies; lost
requests would distort the load. Use :class:`repro.client.client.Client`
for anything involving faults.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.messages import Reply, StartSignal
from repro.core.requests import ClientRequest, RequestId
from repro.sim.process import Process
from repro.types import ProcessId, ReplyStatus, RequestKind


@dataclass(slots=True)
class OpenLoopStats:
    fired: int = 0
    completed: int = 0
    rrts: list[float] = field(default_factory=list)


class OpenLoopClient(Process):
    """Fires ``total`` requests at rate ``rate`` (req/s), Poisson arrivals."""

    def __init__(
        self,
        pid: ProcessId,
        replicas: Sequence[ProcessId],
        kind: RequestKind,
        op: Any,
        rate: float,
        total: int,
        wait_for_start: bool = True,
        warmup: float = 0.0,
    ) -> None:
        super().__init__(pid)
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.replicas = tuple(replicas)
        self.kind = kind
        self.op = op
        self.rate = rate
        self.total = total
        self.wait_for_start = wait_for_start
        #: Delay before the first arrival — lets the leader finish its
        #: initial recovery (this client never retransmits, so requests
        #: arriving at a not-yet-serving leader would be lost).
        self.warmup = warmup
        self.stats = OpenLoopStats()
        self._sent_at: dict[RequestId, float] = {}
        self._seq = 0
        self._started = False

    @property
    def done(self) -> bool:
        """All fired and all completed."""
        return self.stats.fired >= self.total and not self._sent_at

    # ------------------------------------------------------------- lifecycle
    def on_start(self) -> None:
        if not self.wait_for_start:
            self._begin()

    def on_message(self, src: ProcessId, msg: Any) -> None:
        if isinstance(msg, StartSignal):
            if not self._started:
                self._begin()
            return
        if isinstance(msg, Reply):
            sent = self._sent_at.pop(msg.rid, None)
            if sent is None:
                return  # duplicate reply
            if msg.status is ReplyStatus.OK:
                self.stats.completed += 1
                self.stats.rrts.append(self.now - sent)

    def _begin(self) -> None:
        self._started = True
        if self.warmup > 0:
            self.set_timer(self.warmup, self._schedule_next)
        else:
            self._schedule_next()

    def _schedule_next(self) -> None:
        if self.stats.fired >= self.total:
            return
        delay = self.rng.expovariate(self.rate)
        self.set_timer(delay, self._fire)

    def _fire(self) -> None:
        rid = RequestId(self.pid, self._seq)
        self._seq += 1
        self.stats.fired += 1
        self._sent_at[rid] = self.now
        self.broadcast(
            self.replicas, ClientRequest(rid=rid, kind=self.kind, op=self.op)
        )
        self._schedule_next()
