"""Client-side machinery: closed-loop clients and workload generators."""

from repro.client.client import Client, RequestRecord, StepRecord
from repro.client.openloop import OpenLoopClient
from repro.client.workload import (
    Step,
    paper_txn_steps,
    single_kind_steps,
    txn_steps,
)

__all__ = [
    "Client",
    "OpenLoopClient",
    "RequestRecord",
    "StepRecord",
    "Step",
    "paper_txn_steps",
    "single_kind_steps",
    "txn_steps",
]
