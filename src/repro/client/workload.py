"""Workload generators.

A client consumes a list of :class:`Step`s. A step is a sequence of
requests issued back-to-back (each waits for the previous one's reply —
clients are closed-loop, as in §4). A plain request workload has one
request per step; a transaction workload has ``k`` operations plus the
commit in one step, and the step's completion time is the paper's
*transaction response time* (TRT).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.types import RequestKind


@dataclass(frozen=True, slots=True)
class Step:
    """One unit of client work: requests issued sequentially.

    ``transactional`` marks T-Paxos steps: the requests carry a per-attempt
    transaction id, and an ABORTED reply cancels the rest of the step.
    ``gap`` is think time: the client waits that many seconds before
    issuing the step (chaos workloads use it to spread requests across a
    fault schedule's horizon; the paper's closed-loop benchmarks keep 0).
    """

    requests: tuple[tuple[RequestKind, Any], ...]
    transactional: bool = False
    label: str = ""
    gap: float = 0.0


def single_kind_steps(
    kind: RequestKind,
    count: int,
    op: Any | Callable[[int], Any] = None,
) -> list[Step]:
    """``count`` independent requests of one kind (the Fig. 5–8 workloads).

    ``op`` may be a fixed operation payload or a factory called with the
    request index. Defaults to the noop-service op matching the kind.
    """
    steps = []
    for index in range(count):
        payload = op(index) if callable(op) else op
        if payload is None:
            payload = (kind.value,)
        steps.append(Step(requests=((kind, payload),), label=kind.value))
    return steps


def txn_steps(
    count: int,
    ops: Sequence[Any] | Callable[[int], Sequence[Any]],
    optimized: bool = True,
    read_flags: Sequence[bool] | None = None,
    commit_op: Any = ("write",),
) -> list[Step]:
    """``count`` transactions over explicit operation lists.

    * ``optimized=True`` — T-Paxos: ops go as ``TXN_OP`` and the step ends
      with ``TXN_COMMIT`` (§3.5).
    * ``optimized=False`` — the §4.2 baseline: each op is an ordinary
      READ/WRITE request (``read_flags`` says which; default all writes)
      and the commit is one more WRITE-coordinated request carrying
      ``commit_op`` (any cheap write the service understands — the noop
      service's ``("write",)`` by default).
    """
    steps = []
    for index in range(count):
        op_list = tuple(ops(index)) if callable(ops) else tuple(ops)
        if optimized:
            requests = tuple((RequestKind.TXN_OP, op) for op in op_list)
            requests += ((RequestKind.TXN_COMMIT, None),)
            steps.append(Step(requests=requests, transactional=True, label="txn-opt"))
        else:
            flags = read_flags if read_flags is not None else [False] * len(op_list)
            if len(flags) != len(op_list):
                raise ValueError("read_flags must match ops length")
            requests = tuple(
                (RequestKind.READ if is_read else RequestKind.WRITE, op)
                for op, is_read in zip(op_list, flags, strict=True)
            )
            requests += ((RequestKind.WRITE, commit_op),)  # the commit request
            steps.append(Step(requests=requests, label="txn-base"))
    return steps


def paper_txn_steps(mode: str, requests_per_txn: int, count: int) -> list[Step]:
    """The §4.2 transaction workloads against the noop service.

    * ``"read_write"`` — unoptimized; a 3-request transaction is 2 reads +
      1 write, a 5-request one is 3 reads + 2 writes (as specified in §4.2),
      plus the commit.
    * ``"write_only"`` — unoptimized, all writes, plus the commit.
    * ``"optimized"`` — T-Paxos: all ops answered immediately, one commit.
    """
    if requests_per_txn < 1:
        raise ValueError("requests_per_txn must be >= 1")
    if mode == "optimized":
        ops = tuple(("write",) for _ in range(requests_per_txn))
        return txn_steps(count, ops, optimized=True)
    if mode == "write_only":
        ops = tuple(("write",) for _ in range(requests_per_txn))
        return txn_steps(count, ops, optimized=False)
    if mode == "read_write":
        n_writes = requests_per_txn // 2  # 3 -> 1 write, 5 -> 2 writes
        n_reads = requests_per_txn - n_writes
        ops = tuple(("read",) for _ in range(n_reads)) + tuple(
            ("write",) for _ in range(n_writes)
        )
        flags = tuple(True for _ in range(n_reads)) + tuple(False for _ in range(n_writes))
        return txn_steps(count, ops, optimized=False, read_flags=flags)
    raise ValueError(f"unknown transaction mode {mode!r}")
