"""Keyspace sharding: several replication groups per process.

:class:`repro.shard.router.ShardRouter` maps service keys to replication
groups with a deterministic, process-independent hash, so every process
routes identically without coordination. :class:`repro.shard.host.GroupHost`
is the process that hosts one replica of *every* group, sharing one
stable-storage pump (one simulated disk, one fsync clock, one crash)
across all of them.
"""

from repro.shard.host import GroupEnv, GroupHost
from repro.shard.router import ShardRouter

__all__ = ["GroupEnv", "GroupHost", "ShardRouter"]
