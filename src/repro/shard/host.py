"""The sharded process: one replica of every replication group.

A :class:`GroupHost` is the unit the world registers, crashes and
recovers. Inside it live N :class:`repro.core.group.ReplicationGroup`
instances — one replica of each shard — all sharing the process's
:class:`repro.storage.store.StoragePump` (one simulated platter, one
fsync clock, one crash) and the process's network identity.

Wire format: traffic *between replica processes* travels wrapped in
:class:`repro.core.messages.GroupEnvelope` so the receiving host knows
which of its groups the Prepare/Accept/heartbeat belongs to. Traffic to
clients (Replies) goes bare — clients are group-oblivious and unchanged.
Bare :class:`~repro.core.requests.ClientRequest` broadcasts arriving from
clients are routed host-side through the deterministic
:class:`~repro.shard.router.ShardRouter`: every host hands the request to
the same group, and that group's leader answers. Single-group clusters
never construct a :class:`GroupHost` at all (the harness builds classic
standalone :class:`~repro.core.replica.Replica` processes), which is what
keeps ``groups=1`` byte-identical to the unsharded simulator.
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Callable, Iterable, Mapping
from typing import Any

from repro.core.config import ReplicaConfig
from repro.core.group import ReplicationGroup
from repro.core.messages import GroupEnvelope
from repro.core.requests import ClientRequest
from repro.election.base import LeaderElector
from repro.errors import ConfigError
from repro.obs.prof.profiler import NULL_PROFILER, NullProfiler, SimProfiler
from repro.obs.registry import NULL_REGISTRY, Scope
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer
from repro.services.base import Service
from repro.shard.router import ShardRouter
from repro.sim.process import Env, Process, TimerHandle
from repro.storage.store import StoragePump
from repro.types import GroupId, ProcessId


class GroupEnv(Env):
    """One group's view of its host process's environment.

    Delegates everything to the host's real environment (bound by the
    world at registration, hence the lazy lookups) and stamps outgoing
    peer traffic with the group id. The group id travels *outside* the
    protocol message — protocol code stays shard-oblivious.
    """

    __slots__ = ("host", "group", "_send_instruments")

    def __init__(self, host: "GroupHost", group: GroupId) -> None:
        self.host = host
        self.group = group
        self._send_instruments: dict[type, Any] = {}

    def _env(self) -> Env:
        env = self.host.env
        assert env is not None, f"{self.host.pid} is not bound to an environment"
        return env

    @property
    def pid(self) -> ProcessId:
        return self.host.pid

    @property
    def now(self) -> float:
        return self._env().now

    @property
    def rng(self) -> random.Random:
        return self._env().rng

    def send(self, dst: ProcessId, msg: Any) -> None:
        if dst in self.host.peer_set:
            # The world's wire accounting only sees GroupEnvelope, so count
            # the inner protocol message under the group's own scope
            # (``proc.<pid>.g<N>.send.<Type>``) for per-group reporting.
            counter = self._send_instruments.get(type(msg))
            if counter is None:
                counter = self._send_instruments[type(msg)] = self.host.groups[
                    self.group
                ].metrics.counter(f"send.{type(msg).__name__}")
            counter.inc()
            self._env().send(dst, GroupEnvelope(self.group, msg))
        else:
            self._env().send(dst, msg)  # replies to clients go bare

    def set_timer(self, delay: float, fn: Callable[..., None], *args: Any) -> TimerHandle:
        return self._env().set_timer(delay, fn, *args)


class GroupHost(Process):
    """A process hosting one replica of each of ``n_groups`` shards."""

    def __init__(
        self,
        pid: ProcessId,
        config: ReplicaConfig,
        service_factory: Callable[[], Service],
        electors: Mapping[GroupId, LeaderElector] | Iterable[LeaderElector],
        n_groups: int | None = None,
    ) -> None:
        super().__init__(pid)
        if not isinstance(electors, Mapping):
            electors = dict(enumerate(electors))
        n_groups = len(electors) if n_groups is None else n_groups
        if n_groups < 1:
            raise ConfigError(f"need at least one group, got {n_groups}")
        if sorted(electors) != list(range(n_groups)):
            raise ConfigError(
                f"electors must cover groups 0..{n_groups - 1}, got {sorted(electors)}"
            )
        self.config = config
        self.peer_set = frozenset(config.peers)
        self.router = ShardRouter(n_groups)
        self.stats: Counter[str] = Counter()
        #: Observability hooks; the harness swaps in the run's instances
        #: (the pump and every group read them through ``host``).
        self.metrics: Scope = NULL_REGISTRY.scope(pid)
        self.tracer: Tracer | NullTracer = NULL_TRACER
        self.profiler: SimProfiler | NullProfiler = NULL_PROFILER
        #: One durable substrate for the whole process.
        self.pump = StoragePump(self)
        self.groups: dict[GroupId, ReplicationGroup] = {}
        for group_id in range(n_groups):
            group = ReplicationGroup(
                pid,
                config,
                service_factory,
                electors[group_id],
                group=group_id,
                pump=self.pump,
            )
            group.bind(GroupEnv(self, group_id))
            self.groups[group_id] = group

    @property
    def store(self) -> StoragePump:
        """The process's storage substrate, under the name fault schedules
        and chaos mutations already use (``replica.store.inject_*``)."""
        return self.pump

    # ------------------------------------------------------------- lifecycle
    def on_start(self) -> None:
        for group_id in sorted(self.groups):
            self.groups[group_id].on_start()

    def on_crash(self) -> None:
        # One power cut hits every group; the pump is idempotent, so each
        # group's own crash hook may also touch it safely.
        self.pump.crash()
        for group_id in sorted(self.groups):
            group = self.groups[group_id]
            group.alive = False
            group.on_crash()

    def on_recover(self) -> None:
        for group_id in sorted(self.groups):
            group = self.groups[group_id]
            group.alive = True
            group.on_recover()  # may fail-stop the group (alive = False)
        if not any(group.alive for group in self.groups.values()):
            # The device refused replay: the whole process fail-stops.
            self.alive = False

    # --------------------------------------------------------------- routing
    def on_message(self, src: ProcessId, msg: Any) -> None:
        if type(msg) is GroupEnvelope:
            group = self.groups.get(msg.group)
            if group is None or not group.alive:
                self.stats["dropped_group_messages"] += 1
                return
            group.on_message(src, msg.msg)
            return
        if type(msg) is ClientRequest:
            group = self.groups[self.router.group_for_request(msg)]
            if group.alive:
                group.on_message(src, msg)
            return
        self.stats["unknown_messages"] += 1

    # --------------------------------------------------------------- queries
    def invariant_snapshots(self) -> list[dict[str, Any]]:
        """Per-group invariant snapshots, in group order (the chaos layer
        checks each group as its own consensus instance)."""
        return [
            self.groups[group_id].invariant_snapshot()
            for group_id in sorted(self.groups)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "up" if self.alive else "crashed"
        return f"<GroupHost {self.pid} groups={len(self.groups)} ({status})>"
