"""Deterministic key -> replication-group routing.

Sharding only works if every process — all replicas and any observer —
agrees on the mapping without exchanging a single message. The router
therefore hashes with :func:`zlib.crc32`, which is a pure function of the
key bytes: no process identity, no ``PYTHONHASHSEED``, no interning
effects. Two routers built with the same group count agree on every key
on every host, forever.

What gets routed where:

* keyed service ops (``("put", key, ...)``, ``("get", key)``, bank
  ``("deposit", account, ...)`` — anything whose second element is a
  string key) go to ``crc32(key) % n_groups``;
* keyless ops (``("keys",)``, ``("total",)``) go to group 0, the
  designated home for whole-service reads — with one group that is the
  only group, so unsharded behavior is unchanged by construction;
* transactional requests route by their *transaction id*, not their
  keys: every op of one transaction must land on one group's T-Paxos
  coordinator (``TXN_COMMIT`` carries no op at all). Cross-group
  transactions would need a 2PC layer on top — see ROADMAP.
"""

from __future__ import annotations

import zlib

from repro.core.requests import ClientRequest
from repro.errors import ConfigError
from repro.types import GroupId


class ShardRouter:
    """Total, deterministic, process-independent request router."""

    __slots__ = ("n_groups",)

    def __init__(self, n_groups: int) -> None:
        if n_groups < 1:
            raise ConfigError(f"need at least one group, got {n_groups}")
        self.n_groups = n_groups

    def group_for_key(self, key: str) -> GroupId:
        """The group owning ``key`` (pure function of the key bytes)."""
        return zlib.crc32(key.encode("utf-8")) % self.n_groups

    def group_for_op(self, op: object) -> GroupId:
        """The group owning a service op: by key when it has one, else 0."""
        if (
            isinstance(op, tuple)
            and len(op) >= 2
            and isinstance(op[1], str)
        ):
            return self.group_for_key(op[1])
        return 0

    def group_for_request(self, request: ClientRequest) -> GroupId:
        """Where a client request must be coordinated.

        Transactions pin every request of one txn id to one group (a
        commit has no op to hash, and split transactions would need
        cross-group atomic commit); everything else routes by its op.
        """
        if request.txn is not None or request.kind.is_transactional:
            return self.group_for_key(str(request.txn))
        return self.group_for_op(request.op)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardRouter(n_groups={self.n_groups})"
