"""The metrics registry: counters, gauges and fixed-bucket histograms.

Pure Python and allocation-light: instruments are plain ``__slots__``
objects created once and mutated in place, and every lookup is a single
dict access. When metrics are disabled the registry is replaced by
:data:`NULL_REGISTRY`, whose instruments are shared no-ops — an
instrumentation point in a hot path then costs one dict hit and one
no-op method call, and records nothing.

Instrument names are flat dotted strings; the reporting layer relies on
two conventions:

* global message accounting: ``msg.send.<Type>``, ``msg.send_bytes.<Type>``,
  ``msg.deliver.<Type>``, ``msg.drop.<Type>``;
* per-process instruments: ``proc.<pid>.<rest>`` — obtained via
  :meth:`MetricsRegistry.scope`, which prefixes names so protocol code
  never string-formats pids itself.

Nothing in this module reads clocks or RNGs: recording a metric can never
perturb a simulation schedule (the determinism regression test in
``tests/integration/test_obs_determinism.py`` holds the subsystem to that).
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterator, Mapping, Sequence

#: Default latency buckets, seconds: ~geometric 10µs .. 10s (the paper's
#: measurements span 0.18ms LAN RRTs to ~100ms WAN transactions).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for base in (1.0, 2.0, 5.0)
) + (10.0,)


class Counter:
    """A monotonically increasing count (messages, bytes, aborts...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.value}>"


class Gauge:
    """A point-in-time value (queue depth, virtual clock, heap size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.value}>"


class Histogram:
    """Fixed-bucket histogram with quantile estimation.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket catches everything above the last edge. Observations
    are O(log buckets) (a bisect) and allocate nothing.
    """

    __slots__ = ("bounds", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``).

        The estimate interpolates linearly within the bucket containing the
        target rank, clamped to the observed min/max — so it is always
        within one bucket width of the true sample quantile as long as the
        samples fall inside the finite buckets.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for idx, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count > 0:
                lo = self.bounds[idx - 1] if idx > 0 else min(self.minimum, self.bounds[0])
                hi = self.bounds[idx] if idx < len(self.bounds) else self.maximum
                lo = max(lo, self.minimum)
                hi = min(hi, self.maximum)
                if hi <= lo:
                    return lo
                # Position of the target rank inside this bucket.
                within = (target - (cumulative - bucket_count)) / bucket_count
                return lo + (hi - lo) * min(1.0, max(0.0, within))
        return self.maximum  # pragma: no cover - cumulative always reaches count

    def snapshot(self) -> dict[str, object]:
        """A JSON-serializable dump (see :mod:`repro.obs.timeline`)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }

    @classmethod
    def from_snapshot(cls, snap: Mapping[str, object]) -> "Histogram":
        hist = cls(snap["bounds"])  # type: ignore[arg-type]
        hist.counts = list(snap["counts"])  # type: ignore[arg-type]
        hist.count = int(snap["count"])  # type: ignore[arg-type]
        hist.total = float(snap["total"])  # type: ignore[arg-type]
        raw_min, raw_max = snap["min"], snap["max"]
        hist.minimum = float("inf") if raw_min is None else float(raw_min)
        hist.maximum = float("-inf") if raw_max is None else float(raw_max)
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram n={self.count} mean={self.mean:.6g}>"


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class Scope:
    """A registry view that prefixes every instrument name with ``proc.<pid>``
    (or any other prefix) — protocol code records against its scope and
    stays ignorant of which process it is."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self._prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(f"{self._prefix}.{name}")

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._registry.histogram(f"{self._prefix}.{name}", bounds)


class MetricsRegistry:
    """Owns every instrument of one run. Instruments are created on first
    use and cached by name; asking twice returns the same object."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------ instruments
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(bounds)
        return hist

    def scope(self, pid: str) -> Scope:
        return Scope(self, f"proc.{pid}")

    # --------------------------------------------------------------- queries
    def counters(self, prefix: str = "") -> dict[str, int]:
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def gauges(self, prefix: str = "") -> dict[str, float]:
        return {
            name: g.value
            for name, g in sorted(self._gauges.items())
            if name.startswith(prefix)
        }

    def histograms(self, prefix: str = "") -> dict[str, Histogram]:
        return {
            name: h
            for name, h in sorted(self._histograms.items())
            if name.startswith(prefix)
        }

    def counter_value(self, name: str) -> int:
        """The counter's value, 0 if it never incremented (never creates)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def __iter__(self) -> Iterator[str]:
        yield from self._counters
        yield from self._gauges
        yield from self._histograms


class NullRegistry(MetricsRegistry):
    """The disabled registry: every instrument is a shared no-op, scoping
    returns the same null scope, and nothing is ever stored."""

    enabled = False

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def __init__(self) -> None:
        super().__init__()
        self._scope = Scope(self, "null")

    def counter(self, name: str) -> Counter:
        return self._COUNTER

    def gauge(self, name: str) -> Gauge:
        return self._GAUGE

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._HISTOGRAM

    def scope(self, pid: str) -> Scope:
        return self._scope


#: Shared disabled registry — the default wherever metrics are optional.
NULL_REGISTRY = NullRegistry()
