"""The deterministic sim-profiler: folded-stack attribution of sim CPU and
host wall time.

Two currencies are tracked per frame path:

* **sim CPU** — the virtual-time CPU occupancy the :class:`repro.sim.cpu`
  model books per message (and ``execute_time`` per modeled execution).
  These values derive only from simulation state, so they are identical on
  every run of the same seed.
* **host time** — real ``perf_counter_ns`` time spent inside kernel event
  callbacks and protocol handlers. This is where the *reproduction's own*
  hot spots show up (the thing ``tests/perf`` floors guard).

The profiler follows the same passivity contract as the metrics registry
and the tracer: it only *reads* clocks and counters, never touches an RNG
or a schedule, so a profiled run is byte-identical to a bare one
(tests/integration/test_profiler.py pins this for all three protocols).
When profiling is off every hook is a no-op on the shared
:data:`NULL_PROFILER` and the kernel runs its untouched bare loop — zero
overhead, checked exactly by the perf tier.

Frame paths form a tree interned as :class:`_Node` objects, so the hot
path (``enter``/``exit``) is one dict hit plus one clock read per edge —
no tuple allocation per event. Host clocks live *here*, in the obs layer,
on purpose: deterministic layers (sim/core/...) may only reach them
through the injected :attr:`SimProfiler.host_clock` attribute (see
DET001 in ``repro.lint``).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator

__all__ = [
    "FrameStat",
    "NULL_PROFILER",
    "NullProfiler",
    "SimProfiler",
]


class FrameStat:
    """Exclusive (self-time) totals for one frame path."""

    __slots__ = ("calls", "sim_cpu", "host_ns")

    def __init__(self) -> None:
        self.calls = 0
        #: Simulated CPU seconds attributed to this frame (deterministic).
        self.sim_cpu = 0.0
        #: Host nanoseconds of self time (excludes child frames).
        self.host_ns = 0

    def add_cpu(self, seconds: float) -> None:
        """Account one call worth ``seconds`` of simulated CPU."""
        self.calls += 1
        self.sim_cpu += seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FrameStat calls={self.calls} sim_cpu={self.sim_cpu:.6f}s "
            f"host={self.host_ns}ns>"
        )


class _Node:
    """One interned frame-path node; children keyed by frame label."""

    __slots__ = ("label", "children", "stat")

    def __init__(self, label: str) -> None:
        self.label = label
        self.children: dict[str, _Node] = {}
        self.stat = FrameStat()


class SimProfiler:
    """Collects folded-stack samples; created per run by the harness.

    ``clock`` is the virtual clock (``lambda: kernel.now``); ``host_clock``
    is the host-time source (injected so deterministic layers never name an
    ambient clock themselves). ``sample_interval`` is the virtual-time
    period of the counter track sampled by the kernel's profiled loop.
    """

    enabled = True

    __slots__ = (
        "clock",
        "host_clock",
        "sample_interval",
        "next_sample",
        "actors",
        "samples",
        "_root",
        "_stack",
    )

    def __init__(
        self,
        clock: Callable[[], float],
        host_clock: Callable[[], int] = time.perf_counter_ns,
        sample_interval: float = 0.01,
    ) -> None:
        self.clock = clock
        self.host_clock = host_clock
        self.sample_interval = sample_interval
        #: Virtual time at/after which the next counter sample fires.
        self.next_sample = 0.0
        #: pid -> kind ("replica" | "client" | "other"); drives the E/m/M
        #: classification of send/recv frames.
        self.actors: dict[str, str] = {}
        #: Counter-track rows ``(t, actor, name, value)``; values are
        #: simulation-derived only, so the track is deterministic.
        self.samples: list[tuple[float, str, str, float]] = []
        self._root = _Node("")
        #: Live scope stack: ``[node, start_ns, child_ns]`` per open frame.
        self._stack: list[list] = []

    # -------------------------------------------------------------- actors
    def register_actor(self, pid: object, kind: str) -> None:
        self.actors[str(pid)] = kind

    def actor_kind(self, pid: object) -> str:
        return self.actors.get(str(pid), "other")

    # ------------------------------------------------------------- scoping
    def enter(self, label: str) -> None:
        """Open a host-time scope. ``label`` must be a literal (OBS002)."""
        # _child() inlined: this runs once per kernel event and once per
        # protocol scope, and the call overhead is measurable (perf tier
        # bounds the profiled/bare ratio).
        stack = self._stack
        parent = stack[-1][0] if stack else self._root
        node = parent.children.get(label)
        if node is None:
            node = parent.children[label] = _Node(label)
        stack.append([node, self.host_clock(), 0])

    def exit(self) -> None:
        """Close the innermost scope, attributing exclusive self time."""
        node, start, child_ns = self._stack.pop()
        elapsed = self.host_clock() - start
        stat = node.stat
        stat.calls += 1
        stat.host_ns += elapsed - child_ns
        if self._stack:
            self._stack[-1][2] += elapsed

    # The kernel's event loop opens one frame per dispatched event with a
    # dynamic label (the callback's qualname) — same mechanics as
    # enter/exit, different names so OBS002's literal-label rule applies
    # only to protocol-level scopes.
    enter_event = enter
    exit_event = exit

    def enter_handler(self, actor: str, frame: str) -> None:
        """Open the two-frame ``actor -> handler`` scope with one clock read."""
        now = self.host_clock()
        stack = self._stack
        parent = stack[-1][0] if stack else self._root
        actor_node = parent.children.get(actor)
        if actor_node is None:
            actor_node = parent.children[actor] = _Node(actor)
        frame_node = actor_node.children.get(frame)
        if frame_node is None:
            frame_node = actor_node.children[frame] = _Node(frame)
        stack.append([actor_node, now, 0])
        stack.append([frame_node, now, 0])

    def exit_handler(self) -> None:
        """Close a handler scope; the actor frame keeps zero self time."""
        now = self.host_clock()
        stack = self._stack
        node, start, child_ns = stack.pop()
        elapsed = now - start
        stat = node.stat
        stat.calls += 1
        stat.host_ns += elapsed - child_ns
        stack.pop()  # the actor frame: all of its time belongs to children
        if stack:
            stack[-1][2] += elapsed

    # ---------------------------------------------------------- accounting
    def stat(self, path: tuple[str, ...]) -> FrameStat:
        """Get-or-create the stat at an absolute frame path (sim-CPU hooks
        cache the returned object, so this is off every hot path)."""
        node = self._root
        for label in path:
            child = node.children.get(label)
            if child is None:
                child = node.children[label] = _Node(label)
            node = child
        return node.stat

    def frames(self) -> dict[tuple[str, ...], FrameStat]:
        """All non-empty frame paths, sorted, mapped to their stats."""
        out: dict[tuple[str, ...], FrameStat] = {}

        def walk(node: _Node, prefix: tuple[str, ...]) -> None:
            for label in sorted(node.children):
                child = node.children[label]
                path = prefix + (label,)
                stat = child.stat
                if stat.calls or stat.sim_cpu or stat.host_ns:
                    out[path] = stat
                walk(child, path)

        walk(self._root, ())
        return out

    # ------------------------------------------------------------ sampling
    def _actor_totals(self) -> dict[str, float]:
        """Cumulative sim CPU per registered actor (subtree sums)."""
        totals = dict.fromkeys(self.actors, 0.0)

        def subtree(node: _Node) -> float:
            total = node.stat.sim_cpu
            for child in node.children.values():
                total += subtree(child)
            return total

        def walk(node: _Node) -> None:
            for label, child in node.children.items():
                if label in totals:
                    totals[label] += subtree(child)
                else:
                    walk(child)

        walk(self._root)
        return totals

    def sample(self, now: float, events: int, heap: int, pool: int) -> None:
        """Record one deterministic counter sample at virtual time ``now``.

        Called by the kernel's profiled loop whenever ``now`` crosses
        :attr:`next_sample`. Only simulation-derived values are sampled, so
        the counter tracks are reproducible run to run.
        """
        samples = self.samples
        totals = self._actor_totals()
        for actor in sorted(totals):
            samples.append((now, actor, "sim_cpu_ms", totals[actor] * 1e3))
        samples.append((now, "kernel", "events_processed", float(events)))
        samples.append((now, "kernel", "heap_size", float(heap)))
        samples.append((now, "kernel", "pool_size", float(pool)))
        self.next_sample = now + self.sample_interval

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimProfiler frames={len(self.frames())} actors={len(self.actors)}>"


class NullProfiler:
    """No-op stand-in: every hook does nothing, ``enabled`` is False.

    Call sites branch on ``profiler.enabled`` so the disabled cost is one
    attribute load; the methods exist so code that *doesn't* branch (cold
    paths, tests) still works.
    """

    enabled = False

    __slots__ = ()

    #: Shared sink so ``stat(...)`` callers on a disabled profiler can
    #: still ``add_cpu`` harmlessly.
    _SINK = FrameStat()

    host_clock = staticmethod(time.perf_counter_ns)
    sample_interval = 0.0
    next_sample = float("inf")
    actors: dict[str, str] = {}
    samples: list[tuple[float, str, str, float]] = []

    def register_actor(self, pid: object, kind: str) -> None:
        pass

    def actor_kind(self, pid: object) -> str:
        return "other"

    def enter(self, label: str) -> None:
        pass

    def exit(self) -> None:
        pass

    enter_event = enter
    exit_event = exit

    def enter_handler(self, actor: str, frame: str) -> None:
        pass

    def exit_handler(self) -> None:
        pass

    def stat(self, path: tuple[str, ...]) -> FrameStat:
        return self._SINK

    def frames(self) -> dict[tuple[str, ...], FrameStat]:
        return {}

    def sample(self, now: float, events: int, heap: int, pool: int) -> None:
        pass

    def __iter__(self) -> Iterator:  # pragma: no cover - defensive
        return iter(())


#: The shared disabled profiler (the default everywhere).
NULL_PROFILER = NullProfiler()
