"""Deterministic sim-profiler: folded stacks, counter tracks, attribution.

See :mod:`repro.obs.prof.profiler` for the collection machinery (zero
overhead when off, byte-identical simulation when on) and
:mod:`repro.obs.prof.export` for the flamegraph / Perfetto / table
exporters. ``docs/performance.md`` has the walkthrough.
"""

from repro.obs.prof.export import (
    attribution,
    classify_frame,
    collapsed_lines,
    counter_samples,
    frame_rows,
    write_collapsed,
)
from repro.obs.prof.profiler import (
    NULL_PROFILER,
    FrameStat,
    NullProfiler,
    SimProfiler,
)

__all__ = [
    "FrameStat",
    "NULL_PROFILER",
    "NullProfiler",
    "SimProfiler",
    "attribution",
    "classify_frame",
    "collapsed_lines",
    "counter_samples",
    "frame_rows",
    "write_collapsed",
]
