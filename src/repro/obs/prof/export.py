"""Profiler exporters: collapsed flamegraph text, counter tracks, tables.

The collapsed format is Brendan Gregg's folded-stack convention — one line
per unique frame path, ``frame;frame;frame <count>`` — directly consumable
by ``flamegraph.pl``, speedscope, and inferno. Values are integers:
nanoseconds of simulated CPU (``metric="sim"``) or of host self time
(``metric="host"``).

:func:`counter_samples` adapts the profiler's deterministic counter track
to the shape :func:`repro.obs.chrome.chrome_events` merges as Perfetto
``"C"`` (counter) events; :func:`attribution` rolls frame paths up to the
paper's §3.4 latency components so ``repro profile`` can cross-check the
tracer's critical-path analysis against CPU occupancy.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.obs.prof.profiler import NullProfiler, SimProfiler

#: §3.4 component order (matches ``repro.obs.tracing.COMPONENTS``).
COMPONENTS = ("M", "E", "m", "other")

__all__ = [
    "COMPONENTS",
    "attribution",
    "classify_frame",
    "collapsed_lines",
    "counter_samples",
    "frame_rows",
    "write_collapsed",
]


def frame_rows(
    profiler: SimProfiler | NullProfiler,
) -> list[tuple[tuple[str, ...], int, int, int]]:
    """Sorted ``(path, calls, sim_ns, host_ns)`` rows for every frame."""
    return [
        (path, stat.calls, int(round(stat.sim_cpu * 1e9)), stat.host_ns)
        for path, stat in profiler.frames().items()
    ]


def collapsed_lines(
    profiler: SimProfiler | NullProfiler, metric: str = "sim"
) -> list[str]:
    """Folded-stack lines with integer values; zero-valued frames dropped.

    ``metric="sim"`` emits simulated-CPU nanoseconds (deterministic);
    ``metric="host"`` emits host self-time nanoseconds.
    """
    if metric not in ("sim", "host"):
        raise ValueError(f"unknown collapsed metric {metric!r} (want sim|host)")
    lines = []
    for path, _calls, sim_ns, host_ns in frame_rows(profiler):
        value = sim_ns if metric == "sim" else host_ns
        if value > 0:
            lines.append(";".join(path) + f" {value}")
    return lines


def write_collapsed(
    profiler: SimProfiler | NullProfiler, path: str | Path, metric: str = "sim"
) -> Path:
    """Write the collapsed flamegraph file; returns the path."""
    path = Path(path)
    text = "\n".join(collapsed_lines(profiler, metric=metric))
    path.write_text(text + "\n" if text else "", encoding="utf-8")
    return path


def counter_samples(profiler: SimProfiler | NullProfiler) -> list[dict[str, Any]]:
    """The deterministic counter track as chrome-exporter counter rows."""
    return [
        {"actor": actor, "name": name, "t": t, "value": value}
        for t, actor, name, value in profiler.samples
    ]


def classify_frame(path: tuple[str, ...], actors: dict[str, str]) -> str:
    """Map one frame path to a §3.4 component.

    ``execute`` frames are E; ``send.<Type>.<peer>`` / ``recv.<Type>.<peer>``
    frames are M when either endpoint is a client, m when both are
    replicas; everything else is protocol overhead ("other").
    """
    leaf = path[-1]
    if leaf == "execute" or leaf.startswith("execute."):
        return "E"
    if leaf.startswith(("send.", "recv.")):
        peer = leaf.rsplit(".", 1)[-1]
        actor = next((actors[p] for p in path if p in actors), "other")
        if "client" in (peer, actor):
            return "M"
        if peer == "replica" and actor == "replica":
            return "m"
    return "other"


def leaf_is_component(path: tuple[str, ...]) -> bool:
    """True when the leaf frame is an E/m/M-classifiable accounting frame
    (send/recv/execute), as opposed to a host-time handler frame."""
    leaf = path[-1]
    return leaf == "execute" or leaf.startswith(("execute.", "send.", "recv."))


def attribution(
    profiler: SimProfiler | NullProfiler,
) -> dict[str, tuple[int, float]]:
    """Sim-CPU occupancy rolled up per component: ``{comp: (calls, secs)}``.

    Only accounting frames (send/recv/execute leaves) that carry sim CPU
    participate, so the call counts are per-message / per-execution — the
    host-time scope frames that happen to share a leaf label (the
    ``enter("execute")`` wrap around a real service call) don't double in.
    """
    out: dict[str, list[float]] = {c: [0, 0.0] for c in COMPONENTS}
    for path, stat in profiler.frames().items():
        if not leaf_is_component(path) or not stat.sim_cpu:
            continue
        comp = classify_frame(path, profiler.actors)
        out[comp][0] += stat.calls
        out[comp][1] += stat.sim_cpu
    return {c: (int(v[0]), v[1]) for c, v in out.items()}
