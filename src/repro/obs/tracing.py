"""The causal tracer and the per-request critical-path analyzer.

**Recording.** :class:`Tracer` assigns a trace id per client request and
records :class:`repro.obs.spans.Span` objects with parent/child causal
edges. Context is propagated at the *envelope* layer: the world captures
the tracer's ambient span when a message is sent or a timer armed, carries
it alongside the frozen message (never inside it), and re-activates it
around the receiver's handler. Protocol code therefore only needs to open
spans at semantically meaningful points (execute, accept round, txn scope,
recovery); the causal edges fall out of delivery order.

Tracing obeys the same passivity invariant as the metrics layer: the
tracer reads the virtual clock and an id counter — it never touches an
RNG, never schedules an event, and the world passes span slots through the
kernel unconditionally so the event schedule is identical with tracing on
or off (see ``tests/integration/test_tracing.py``).

**Analysis.** :func:`critical_path` reconstructs the chain of causally
latest spans from a request's reply back to its submit and attributes each
wall-time segment to the paper's §3.4 latency components:

* ``M`` — a message hop between a client and a replica,
* ``m`` — a message hop between two replicas,
* ``E`` — service execution,
* ``other`` — everything else (quantization, queueing, protocol logic).

:func:`conformance` then checks the measured decomposition against the
analytic formulas (``2M + E + 2m`` for the basic protocol, ``2M +
max(E, m)`` for X-Paxos reads) on a calibrated deployment profile.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.analysis.model import (
    LatencyModelInputs,
    basic_rrt,
    original_rrt,
    xpaxos_rrt,
)
from repro.obs.spans import Span, SpanStore, SpanTree
from repro.types import ProcessId

#: Sentinel: "parent defaults to the ambient span".
_AMBIENT = object()


class Tracer:
    """Records spans against a virtual clock, with an ambient current span.

    The ambient span (:attr:`current`) is what makes envelope propagation
    work: whoever is running "inside" a span activates it, and everything
    recorded meanwhile — message sends, timer arms, child spans — parents
    to it by default.
    """

    enabled = True

    __slots__ = ("_clock", "store", "current", "_next_id")

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.store = SpanStore()
        self.current: Span | None = None
        self._next_id = 1

    # ------------------------------------------------------------- recording
    def _new_span(
        self,
        name: str,
        kind: str,
        pid: ProcessId | None,
        parent: Span | None,
        attrs: dict[str, Any] | None,
    ) -> Span:
        span_id = self._next_id
        self._next_id += 1
        span = Span(
            span_id=span_id,
            trace_id=parent.trace_id if parent is not None else span_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            kind=kind,
            pid=pid,
            start=self._clock(),
            attrs=attrs if attrs is not None else {},
        )
        return self.store.add(span)

    def start_trace(
        self,
        name: str,
        pid: ProcessId | None = None,
        kind: str = "request",
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Open a root span: a fresh trace id, no parent."""
        return self._new_span(name, kind, pid, parent=None, attrs=attrs)

    def start_span(
        self,
        name: str,
        pid: ProcessId | None = None,
        kind: str = "span",
        parent: Any = _AMBIENT,
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Open a span under ``parent`` (default: the ambient span). With no
        parent available the span becomes its own root."""
        if parent is _AMBIENT:
            parent = self.current
        return self._new_span(name, kind, pid, parent=parent, attrs=attrs)

    def instant(
        self,
        name: str,
        pid: ProcessId | None = None,
        kind: str = "event",
        parent: Any = _AMBIENT,
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """A zero-duration marker span."""
        span = self.start_span(name, pid=pid, kind=kind, parent=parent, attrs=attrs)
        span.end = span.start
        return span

    def end(self, span: Span | None, status: str = "ok") -> None:
        """Close ``span``. Idempotent and ``None``-safe: double ends (e.g.
        duplicated message copies) and disabled-tracing call sites no-op."""
        if span is None or span.end is not None:
            return
        span.end = self._clock()
        if status != "ok":
            span.status = status

    # -------------------------------------------------------------- context
    def activate(self, span: Span | None) -> Span | None:
        """Make ``span`` ambient; returns the previous ambient as a token
        for :meth:`restore`. Activating ``None`` clears the ambient span."""
        token = self.current
        self.current = span
        return token

    def restore(self, token: Span | None) -> None:
        self.current = token

    def activate_for(self, ctx: Span | None) -> Span | None:
        """Activate ``ctx`` unless the ambient span already belongs to the
        same trace (then keep the deeper ambient span). Used when replying
        for a batched request: the reply must join the *request's* trace
        even if it is sent while handling a message from another trace."""
        if ctx is None or (
            self.current is not None and self.current.trace_id == ctx.trace_id
        ):
            return self.activate(self.current)
        return self.activate(ctx)


class NullTracer:
    """Tracing disabled: every operation is a no-op. Mirrors
    :class:`repro.obs.registry.NullRegistry` so call sites stay branch-free."""

    enabled = False
    current = None

    __slots__ = ()

    def start_trace(self, *args: Any, **kwargs: Any) -> None:
        return None

    def start_span(self, *args: Any, **kwargs: Any) -> None:
        return None

    def instant(self, *args: Any, **kwargs: Any) -> None:
        return None

    def end(self, span: Any, status: str = "ok") -> None:
        return None

    def activate(self, span: Any) -> None:
        return None

    def restore(self, token: Any) -> None:
        return None

    def activate_for(self, ctx: Any) -> None:
        return None


NULL_TRACER = NullTracer()


# ====================================================================== analysis

#: Critical-path component labels, in report order.
COMPONENTS = ("M", "E", "m", "other")


@dataclass(frozen=True, slots=True)
class PathSegment:
    """One attributed slice of a request's wall time."""

    span_id: int
    name: str
    kind: str
    component: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class RequestPath:
    """The reconstructed critical path of one client request."""

    trace_id: int
    rid: str | None
    request_kind: str | None
    client: ProcessId | None
    total: float
    segments: tuple[PathSegment, ...]
    complete: bool  # False when the causal chain was broken (orphans)

    def component(self, name: str) -> float:
        return sum(s.duration for s in self.segments if s.component == name)

    def breakdown(self) -> dict[str, float]:
        return {name: self.component(name) for name in COMPONENTS}


def classify_span(span: Span, client: ProcessId | None) -> str:
    """Map a span to a §3.4 latency component."""
    if span.kind == "execute":
        return "E"
    if span.kind == "message":
        src = span.attrs.get("src")
        dst = span.attrs.get("dst")
        if client is not None and client in (src, dst):
            return "M"
        return "m"
    return "other"


def _terminal_span(tree: SpanTree, root: Span) -> Span | None:
    """The causally latest finished descendant that ends by the root's end
    — the last hop before the client observed the reply."""
    assert root.end is not None
    best: Span | None = None
    best_key: tuple[float, int] | None = None
    for span in tree.descendants(root):
        if span.end is None or span.end > root.end:
            continue
        key = (span.end, tree.depth(span))
        if best_key is None or key > best_key:
            best, best_key = span, key
    return best


def critical_path(store: SpanStore, root: Span) -> RequestPath | None:
    """Reconstruct the critical path of one finished request root.

    Walks parent edges from the terminal span (the reply delivery) back to
    the root; each ancestor is charged for the interval from its own start
    to its successor's start, the terminal span for its full extent, and
    the root for the initial gap. Returns ``None`` for unfinished roots.
    """
    if root.end is None:
        return None
    tree = store.tree(root.trace_id)
    client = root.pid
    rid = root.attrs.get("rid")
    request_kind = root.attrs.get("kind")
    total = root.end - root.start

    terminal = _terminal_span(tree, root)
    if terminal is None:
        # No usable descendants (all dropped/orphaned): everything is "other".
        segment = PathSegment(root.span_id, root.name, root.kind, "other",
                              root.start, root.end)
        return RequestPath(root.trace_id, rid, request_kind, client, total,
                           (segment,), complete=False)

    chain: list[Span] = []
    current: Span | None = terminal
    complete = False
    while current is not None:
        chain.append(current)
        if current.span_id == root.span_id:
            complete = True
            break
        current = tree.parent(current)
    chain.reverse()  # root (or orphan ancestor) ... terminal

    segments: list[PathSegment] = []

    def add(span: Span, start: float, end: float, component: str | None = None) -> None:
        if end < start:
            end = start
        segments.append(PathSegment(
            span.span_id, span.name, span.kind,
            component if component is not None else classify_span(span, client),
            start, end,
        ))

    if not complete:
        # The chain is broken by a missing parent: charge the unexplained
        # prefix to the root as "other" evidence, not to a fake component.
        add(root, root.start, chain[0].start, component="other")
    for i, span in enumerate(chain):
        is_terminal = i == len(chain) - 1
        span_end = span.end if span.end is not None else root.end
        end = span_end if is_terminal else chain[i + 1].start
        if span.span_id == root.span_id:
            # The root's own slice is client-side think/queue time.
            add(span, span.start, end, component="other")
        else:
            add(span, span.start, end)
    # Whatever remains between the terminal's end and the root's end is
    # client-side handling (usually ~0 in the simulator).
    last_end = segments[-1].end if segments else root.start
    if root.end - last_end > 0:
        add(root, last_end, root.end, component="other")

    return RequestPath(root.trace_id, rid, request_kind, client, total,
                       tuple(segments), complete=complete)


def analyze_requests(store: SpanStore) -> list[RequestPath]:
    """Critical paths of every finished request trace, in submit order."""
    paths = []
    for root in store.roots():
        if root.kind != "request" or root.end is None:
            continue
        path = critical_path(store, root)
        if path is not None:
            paths.append(path)
    return paths


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[idx]


@dataclass(frozen=True, slots=True)
class PathSummary:
    """Mean/p95 attribution for one request kind."""

    request_kind: str
    n: int
    mean_total: float
    p95_total: float
    mean: Mapping[str, float]
    p95: Mapping[str, float]
    incomplete: int


def summarize_paths(paths: Iterable[RequestPath]) -> dict[str, PathSummary]:
    """Group critical paths by request kind and summarize attribution."""
    groups: dict[str, list[RequestPath]] = {}
    for path in paths:
        groups.setdefault(path.request_kind or "?", []).append(path)
    summaries: dict[str, PathSummary] = {}
    for kind, members in sorted(groups.items()):
        totals = [p.total for p in members]
        mean: dict[str, float] = {}
        p95: dict[str, float] = {}
        for component in COMPONENTS:
            values = [p.component(component) for p in members]
            mean[component] = sum(values) / len(values)
            p95[component] = _percentile(values, 0.95)
        summaries[kind] = PathSummary(
            request_kind=kind,
            n=len(members),
            mean_total=sum(totals) / len(totals),
            p95_total=_percentile(totals, 0.95),
            mean=mean,
            p95=p95,
            incomplete=sum(1 for p in members if not p.complete),
        )
    return summaries


@dataclass(frozen=True, slots=True)
class ConformanceRow:
    """Measured-vs-model comparison for one request kind."""

    request_kind: str
    formula: str
    n: int
    measured_mean: float
    expected: float

    @property
    def deviation(self) -> float:
        return self.measured_mean - self.expected


#: request kind -> (formula label, model function).
_FORMULAS: dict[str, tuple[str, Callable[[LatencyModelInputs], float]]] = {
    "write": ("2M + E + 2m", basic_rrt),
    "read": ("2M + max(E, m)", xpaxos_rrt),
    "original": ("2M + E", original_rrt),
}


def conformance(
    paths: Iterable[RequestPath],
    model: LatencyModelInputs,
    xpaxos_reads: bool = True,
) -> dict[str, ConformanceRow]:
    """Check measured per-request latency against the §3.4 formulas.

    With ``xpaxos_reads=False`` reads travel the basic protocol path and
    are held to the write formula instead.
    """
    summaries = summarize_paths(paths)
    rows: dict[str, ConformanceRow] = {}
    for kind, summary in summaries.items():
        entry = _FORMULAS.get(kind)
        if entry is None:
            continue
        formula, fn = entry
        if kind == "read" and not xpaxos_reads:
            formula, fn = _FORMULAS["write"]
        rows[kind] = ConformanceRow(
            request_kind=kind,
            formula=formula,
            n=summary.n,
            measured_mean=summary.mean_total,
            expected=fn(model),
        )
    return rows


__all__ = [
    "COMPONENTS",
    "ConformanceRow",
    "NULL_TRACER",
    "NullTracer",
    "PathSegment",
    "PathSummary",
    "RequestPath",
    "Tracer",
    "analyze_requests",
    "classify_span",
    "conformance",
    "critical_path",
    "summarize_paths",
]
