"""Causal spans: the data model behind request tracing.

A :class:`Span` is one named interval of virtual time attributed to one
process, linked to its causal parent. A client request becomes a *trace*:
the root span covers submit → reply, every message hop and protocol phase
underneath it is a child span, and the parent edges reconstruct the causal
chain (client submit → leader receive → execute → Accept fan-out →
per-replica Accepted → quorum → Chosen → apply → Reply).

Spans are plain data. The :class:`SpanStore` holds them in creation order
(which is deterministic — span ids are a simple counter), serializes them
to/from JSONL records, and reconstructs :class:`SpanTree` views per trace.
Trees *retain* spans whose parent is missing (dropped exports, crashed
processes, mid-run leader switches) and flag them as orphans rather than
silently discarding them — an orphan is evidence, not noise.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.types import ProcessId


@dataclass(slots=True)
class Span:
    """One interval of virtual time in a causal trace.

    ``end is None`` means the span never finished — the run ended (or the
    owning process lost its role) while the span was open. Open spans are
    exported as-is; analyzers must treat them as abandoned, not zero-cost.
    """

    span_id: int
    trace_id: int
    parent_id: int | None
    name: str
    kind: str
    pid: ProcessId | None
    start: float
    end: float | None = None
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Elapsed virtual time; 0.0 while still open."""
        return 0.0 if self.end is None else self.end - self.start

    def to_record(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "record": "span",
            "id": self.span_id,
            "trace": self.trace_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "pid": self.pid,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "Span":
        return cls(
            span_id=int(record["id"]),
            trace_id=int(record["trace"]),
            parent_id=None if record.get("parent") is None else int(record["parent"]),
            name=str(record["name"]),
            kind=str(record.get("kind", "span")),
            pid=record.get("pid"),
            start=float(record["start"]),
            end=None if record.get("end") is None else float(record["end"]),
            status=str(record.get("status", "ok")),
            attrs=dict(record.get("attrs") or {}),
        )


class SpanStore:
    """All spans of one run, in deterministic creation order."""

    __slots__ = ("_spans", "_by_id")

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._by_id: dict[int, Span] = {}

    def add(self, span: Span) -> Span:
        self._spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def get(self, span_id: int) -> Span | None:
        return self._by_id.get(span_id)

    def roots(self) -> list[Span]:
        """Spans with no parent — one per trace, in creation order."""
        return [s for s in self._spans if s.parent_id is None]

    def trace(self, trace_id: int) -> list[Span]:
        return [s for s in self._spans if s.trace_id == trace_id]

    def trace_ids(self) -> list[int]:
        seen: dict[int, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def find(
        self,
        name: str | None = None,
        kind: str | None = None,
        trace_id: int | None = None,
    ) -> list[Span]:
        return [
            s
            for s in self._spans
            if (name is None or s.name == name)
            and (kind is None or s.kind == kind)
            and (trace_id is None or s.trace_id == trace_id)
        ]

    def open_spans(self) -> list[Span]:
        return [s for s in self._spans if not s.finished]

    def tree(self, trace_id: int) -> "SpanTree":
        return SpanTree.build(self.trace(trace_id), trace_id)

    # ------------------------------------------------------------- serialization
    def to_records(self) -> Iterator[dict[str, Any]]:
        for span in self._spans:
            yield span.to_record()

    @classmethod
    def from_records(cls, records: Sequence[Mapping[str, Any]]) -> "SpanStore":
        store = cls()
        for record in records:
            store.add(Span.from_record(record))
        return store


class SpanTree:
    """Parent/child view of one trace.

    ``orphans`` holds spans whose ``parent_id`` points outside the trace's
    recorded spans (the parent was never exported, or belongs to a process
    whose role changed mid-run). Orphans keep their subtrees and are
    flagged via :meth:`is_orphan`; :meth:`walk` yields them after the
    proper roots so nothing is silently dropped.
    """

    __slots__ = ("trace_id", "roots", "orphans", "_children", "_by_id")

    def __init__(
        self,
        trace_id: int,
        roots: list[Span],
        orphans: list[Span],
        children: dict[int, list[Span]],
        by_id: dict[int, Span],
    ) -> None:
        self.trace_id = trace_id
        self.roots = roots
        self.orphans = orphans
        self._children = children
        self._by_id = by_id

    @classmethod
    def build(cls, spans: Sequence[Span], trace_id: int) -> "SpanTree":
        by_id = {s.span_id: s for s in spans}
        roots: list[Span] = []
        orphans: list[Span] = []
        children: dict[int, list[Span]] = {}
        for span in spans:
            if span.parent_id is None:
                roots.append(span)
            elif span.parent_id in by_id:
                children.setdefault(span.parent_id, []).append(span)
            else:
                orphans.append(span)
        for kids in children.values():
            kids.sort(key=lambda s: (s.start, s.span_id))
        return cls(trace_id, roots, orphans, children, by_id)

    def get(self, span_id: int) -> Span | None:
        return self._by_id.get(span_id)

    def children(self, span: Span) -> list[Span]:
        return self._children.get(span.span_id, [])

    def parent(self, span: Span) -> Span | None:
        if span.parent_id is None:
            return None
        return self._by_id.get(span.parent_id)

    def is_orphan(self, span: Span) -> bool:
        """True when the span's recorded parent is missing from this trace."""
        return span.parent_id is not None and span.parent_id not in self._by_id

    def depth(self, span: Span) -> int:
        depth = 0
        current: Span | None = span
        while current is not None and current.parent_id is not None:
            current = self._by_id.get(current.parent_id)
            depth += 1
        return depth

    def walk(self) -> Iterator[tuple[Span, int]]:
        """Yield ``(span, depth)`` depth-first: roots first, then orphans."""
        def visit(span: Span, depth: int) -> Iterator[tuple[Span, int]]:
            yield span, depth
            for child in self.children(span):
                yield from visit(child, depth + 1)

        for root in self.roots:
            yield from visit(root, 0)
        for orphan in self.orphans:
            yield from visit(orphan, 0)

    def descendants(self, span: Span) -> Iterator[Span]:
        for child in self.children(span):
            yield child
            yield from self.descendants(child)

    # --------------------------------------------------------------- rendering
    def render_waterfall(self, unit: float = 1e-3, unit_name: str = "ms") -> str:
        """A plain-text waterfall of this trace, offsets relative to the
        earliest span start. Orphans are listed under a marker line."""
        spans = list(self._by_id.values())
        if not spans:
            return f"trace {self.trace_id}: (empty)"
        origin = min(s.start for s in spans)
        lines = [f"trace {self.trace_id}"]
        emitted_orphan_header = False
        for span, depth in self.walk():
            if self.is_orphan(span) and not emitted_orphan_header:
                lines.append("  -- orphaned spans (parent missing) --")
                emitted_orphan_header = True
            offset = (span.start - origin) / unit
            if span.finished:
                length = f"{span.duration / unit:.3f} {unit_name}"
            else:
                length = "open"
            where = f" @{span.pid}" if span.pid is not None else ""
            status = "" if span.status == "ok" else f" [{span.status}]"
            lines.append(
                f"  {offset:9.3f}  {'  ' * depth}{span.name}{where}"
                f"  ({length}){status}"
            )
        return "\n".join(lines)


__all__ = ["Span", "SpanStore", "SpanTree"]
