"""Rendering of instrumented runs: per-message-type and per-phase tables.

Consumes :class:`repro.obs.timeline.RunExport` (a parsed JSONL export) or a
live :class:`repro.obs.registry.MetricsRegistry`, and renders aligned text
tables via :mod:`repro.util.tables` — the same look as the benchmark
output, so report blocks paste straight into EXPERIMENTS.md. Powers the
``repro report`` CLI subcommand, including the two-run comparison mode.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.timeline import RunExport, registry_records
from repro.obs.tracing import COMPONENTS, analyze_requests, summarize_paths
from repro.util.tables import format_table


def export_from_registry(registry: MetricsRegistry) -> RunExport:
    """Wrap a live registry as a :class:`RunExport` (no file round-trip)."""
    export = RunExport()
    for record in registry_records(registry):
        kind = record["record"]
        if kind == "counter":
            export.counters[record["name"]] = record["value"]
        elif kind == "gauge":
            export.gauges[record["name"]] = record["value"]
        else:
            export.histograms[record["name"]] = Histogram.from_snapshot(record)
    return export


# ------------------------------------------------------------------- messages
def message_table(export: RunExport) -> str:
    """Per-message-type traffic: sends, delivers, drops, encoded bytes."""
    rows = []
    total_sent = total_bytes = 0
    for type_name in export.message_types():
        sent = export.counter(f"msg.send.{type_name}")
        sent_bytes = export.counter(f"msg.send_bytes.{type_name}")
        total_sent += sent
        total_bytes += sent_bytes
        rows.append(
            [
                type_name,
                sent,
                export.counter(f"msg.deliver.{type_name}"),
                export.counter(f"msg.drop.{type_name}"),
                sent_bytes or "-",
                f"{sent_bytes / sent:.0f}" if sent and sent_bytes else "-",
            ]
        )
    rows.append(["TOTAL", total_sent, "", "", total_bytes or "-", ""])
    return "Per-message-type traffic\n" + format_table(
        ["message", "sent", "delivered", "dropped", "bytes", "bytes/msg"], rows
    )


def per_replica_table(export: RunExport) -> str:
    """Messages sent per process per type (`proc.<pid>.send.<Type>`).

    Sharded runs scope each replication group's counters under
    ``proc.<pid>.g<N>.…``; those rows are labeled ``<pid>/g<N>`` so the
    table breaks traffic down per group, not just per process."""
    cells: dict[tuple[str, str], int] = {}
    pids: set[str] = set()
    types: set[str] = set()
    for name, value in export.counters.items():
        if not name.startswith("proc."):
            continue
        parts = name.split(".")
        if len(parts) == 4 and parts[2] == "send":
            pid, type_name = parts[1], parts[3]
        elif (
            len(parts) == 5
            and parts[3] == "send"
            and parts[2].startswith("g")
            and parts[2][1:].isdigit()
        ):
            pid, type_name = f"{parts[1]}/{parts[2]}", parts[4]
        else:
            continue
        cells[(pid, type_name)] = value
        pids.add(pid)
        types.add(type_name)
    if not cells:
        return "Per-replica sends: (no per-process counters recorded)"
    ordered_types = sorted(types)
    rows = []
    for pid in sorted(pids):
        rows.append([pid, *(cells.get((pid, t), 0) for t in ordered_types)])
    return "Messages sent per process\n" + format_table(["process", *ordered_types], rows)


# --------------------------------------------------------------------- phases
def _phase_rows(histograms: Mapping[str, Histogram]) -> list[list[object]]:
    rows: list[list[object]] = []
    for name, hist in sorted(histograms.items()):
        if hist.count == 0:
            continue
        label = name[len("proc."):] if name.startswith("proc.") else name
        rows.append(
            [
                label,
                hist.count,
                f"{hist.mean * 1e3:.3f}",
                f"{hist.quantile(0.5) * 1e3:.3f}",
                f"{hist.quantile(0.95) * 1e3:.3f}",
                f"{hist.maximum * 1e3:.3f}",
            ]
        )
    return rows


def phase_table(export: RunExport) -> str:
    """Per-replica protocol-phase latency summaries (ms)."""
    rows = _phase_rows(export.histograms)
    if not rows:
        return "Phase latencies: (no histograms recorded)"
    return "Phase latencies (ms)\n" + format_table(
        ["phase", "n", "mean", "p50", "p95", "max"], rows
    )


# -------------------------------------------------------------- critical path
def critical_path_table(export: RunExport) -> str:
    """Per-request-kind critical-path attribution to the §3.4 components
    (M = client<->replica hop, E = execution, m = replica<->replica hop).
    Empty when the export carries no causal spans."""
    if not export.spans:
        return ""
    paths = analyze_requests(export.span_store())
    if not paths:
        return ""
    rows: list[list[object]] = []
    for kind, s in summarize_paths(paths).items():
        rows.append(
            [kind, "mean", s.n, f"{s.mean_total * 1e3:.3f}",
             *(f"{s.mean[c] * 1e3:.3f}" for c in COMPONENTS),
             s.incomplete or ""]
        )
        rows.append(
            [kind, "p95", "", f"{s.p95_total * 1e3:.3f}",
             *(f"{s.p95[c] * 1e3:.3f}" for c in COMPONENTS), ""]
        )
    return "Critical-path attribution (ms)\n" + format_table(
        ["kind", "stat", "n", "total", *COMPONENTS, "incomplete"], rows
    )


# ------------------------------------------------------------------- profiling
def hottest_handlers_table(export: RunExport, top: int = 10) -> str:
    """Top-N frames by simulated CPU (host self-time as the tiebreak).

    Empty when the export carries no profiler records (``repro run
    --profiling`` / ``ClusterSpec(profiling=True)`` produce them).
    """
    frames = [r for r in export.prof if r.get("calls")]
    if not frames:
        return ""
    frames.sort(
        key=lambda r: (
            -(r.get("sim_ns") or 0),
            -(r.get("host_ns") or 0),
            tuple(r.get("path") or ()),
        )
    )
    rows: list[list[object]] = []
    for record in frames[:top]:
        rows.append(
            [
                ";".join(record.get("path") or ()),
                record.get("calls", 0),
                f"{(record.get('sim_ns') or 0) / 1e6:.3f}",
                f"{(record.get('host_ns') or 0) / 1e6:.3f}",
            ]
        )
    return f"Hottest handlers (top {len(rows)}, exclusive)\n" + format_table(
        ["frame", "calls", "sim ms", "host ms"], rows
    )


# ------------------------------------------------------------------ comparison
def compare_table(a: RunExport, b: RunExport) -> str:
    """Side-by-side message counters of two exports, with deltas."""
    rows = []
    for type_name in sorted(set(a.message_types()) | set(b.message_types())):
        sent_a = a.counter(f"msg.send.{type_name}")
        sent_b = b.counter(f"msg.send.{type_name}")
        if sent_a == 0 and sent_b == 0:
            continue
        delta = f"{(sent_b - sent_a) / sent_a * 100:+.1f}%" if sent_a else "new"
        rows.append([type_name, sent_a, sent_b, sent_b - sent_a, delta])
    header = f"Message counts: A = {a.path or 'run A'} | B = {b.path or 'run B'}"
    return header + "\n" + format_table(["message", "A sent", "B sent", "diff", "delta"], rows)


# -------------------------------------------------------------------- summary
def _meta_line(export: RunExport) -> str:
    meta = export.meta
    if not meta:
        return ""
    return (
        f"run: seed={meta.get('seed')} profile={meta.get('profile')} "
        f"replicas={meta.get('n_replicas')} clients={meta.get('n_clients')} "
        f"sim_time={meta.get('sim_time', 0):.3f}s"
    )


def render_report(export: RunExport) -> str:
    """The full single-run report: meta, traffic, per-replica, phases."""
    blocks = [
        block
        for block in (
            _meta_line(export),
            message_table(export),
            per_replica_table(export),
            phase_table(export),
            critical_path_table(export),
            hottest_handlers_table(export),
        )
        if block
    ]
    result = export.result
    if result:
        blocks.append(
            f"totals: requests={result.get('total_requests')} "
            f"messages={result.get('total_messages')} "
            f"bytes={result.get('total_bytes')} "
            f"throughput={result.get('throughput') or 0.0:.1f}/s"
        )
    return "\n\n".join(blocks)


def render_comparison(a: RunExport, b: RunExport) -> str:
    """The two-run comparison report used by ``repro report A B``."""
    blocks = [compare_table(a, b)]
    for label, export in (("A", a), ("B", b)):
        line = _meta_line(export)
        if line:
            blocks.append(f"[{label}] {line}")
    return "\n\n".join(blocks)
