"""Chrome trace-event JSON export (Perfetto / ``about://tracing`` loadable).

Maps the span store onto the trace-event format:

* processes become trace-event ``pid`` s (with ``process_name`` metadata);
* each (process, trace) pair becomes a ``tid`` track, so one request's
  spans line up on one row per process;
* protocol-phase spans (request, execute, accept round, txn, recovery...)
  are emitted as duration events (``B``/``E``), properly nested per track;
* message spans are *async* events (``b``/``e``, matched by ``cat`` +
  ``id``) because a network hop routinely outlives the span that sent it —
  async events carry no LIFO nesting requirement.

Causality is preserved in ``args`` (span/parent/trace ids); timestamps are
virtual-time microseconds. A span pair that would violate duration-event
nesting (partial overlap on one track) is demoted to async rather than
emitted broken, and spans still open at export time are closed at the
export horizon with ``"open": true`` so every ``B`` has an ``E``.

:func:`validate_chrome_trace` re-checks an exported file against the
schema invariants CI relies on: valid JSON, non-decreasing timestamps, and
matched begin/end pairs (both duration and async).
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any

from repro.obs.spans import Span, SpanStore

#: Span kinds that ride async tracks by default (see module docstring).
ASYNC_KINDS = frozenset({"message"})

_US = 1e6  # seconds -> trace-event microseconds


def _span_args(span: Span, open_at_horizon: bool) -> dict[str, Any]:
    args: dict[str, Any] = {
        "span": span.span_id,
        "trace": span.trace_id,
        "parent": span.parent_id,
        "status": span.status,
    }
    if open_at_horizon:
        args["open"] = True
    args.update(span.attrs)
    return args


def chrome_events(
    store: SpanStore,
    horizon: float | None = None,
    counters: Sequence[Mapping[str, Any]] | None = None,
) -> list[dict[str, Any]]:
    """Flatten a span store into a sorted trace-event list.

    ``counters`` (optional) are profiler counter rows —
    ``{"actor", "name", "t", "value"}`` dicts from
    :func:`repro.obs.prof.export.counter_samples` — merged as ``"C"``
    (counter) events *before* the final timestamp sort, so the exported
    file keeps the non-decreasing-ts invariant the validator enforces.
    Each actor gets (or reuses) a trace-event pid, so counter tracks line
    up with that process's span rows in Perfetto.
    """
    spans = list(store)
    if horizon is None:
        ends = [s.end for s in spans if s.end is not None]
        starts = [s.start for s in spans]
        horizon = max(ends + starts) if (ends or starts) else 0.0

    pid_index: dict[Any, int] = {}

    def pid_of(span: Span) -> int:
        key = span.pid if span.pid is not None else "?"
        if key not in pid_index:
            pid_index[key] = len(pid_index) + 1
        return pid_index[key]

    # Partition spans onto (pid, tid) duration tracks or the async pool.
    tracks: dict[tuple[int, int], list[tuple[Span, float, bool]]] = {}
    async_spans: list[tuple[Span, float, bool]] = []
    for span in spans:
        is_open = span.end is None
        end = horizon if is_open else span.end
        entry = (span, max(end, span.start), is_open)
        if span.kind in ASYNC_KINDS:
            async_spans.append(entry)
        else:
            tracks.setdefault((pid_of(span), span.trace_id), []).append(entry)

    events: list[dict[str, Any]] = []

    def pop_one(
        stack: list[tuple[Span, float, bool]],
        track_events: list[dict[str, Any]],
        pid: int,
        tid: int,
    ) -> None:
        span, end, _is_open = stack.pop()
        track_events.append({
            "name": span.name, "ph": "E", "pid": pid, "tid": tid,
            "ts": end * _US,
        })

    for (pid, tid), members in tracks.items():
        members.sort(key=lambda e: (e[0].start, -e[1], e[0].span_id))
        track_events: list[dict[str, Any]] = []
        stack: list[tuple[Span, float, bool]] = []

        for span, end, is_open in members:
            while stack and stack[-1][1] <= span.start:
                pop_one(stack, track_events, pid, tid)
            if stack and stack[-1][1] < end:
                # Partial overlap with the enclosing span: duration events
                # cannot express this, so this span goes async instead.
                async_spans.append((span, end, is_open))
                continue
            stack.append((span, end, is_open))
            track_events.append({
                "name": span.name, "ph": "B", "pid": pid, "tid": tid,
                "ts": span.start * _US, "cat": span.kind,
                "args": _span_args(span, is_open),
            })
        while stack:
            pop_one(stack, track_events, pid, tid)
        events.extend(track_events)

    for span, end, is_open in async_spans:
        pid = pid_of(span)
        ident = f"0x{span.span_id:x}"
        common = {"name": span.name, "cat": span.kind, "id": ident,
                  "pid": pid, "tid": span.trace_id}
        events.append({**common, "ph": "b", "ts": span.start * _US,
                       "args": _span_args(span, is_open)})
        events.append({**common, "ph": "e", "ts": end * _US})

    if counters:
        for row in counters:
            actor = row["actor"]
            if actor not in pid_index:
                pid_index[actor] = len(pid_index) + 1
            events.append({
                "name": row["name"], "ph": "C", "pid": pid_index[actor],
                "tid": 0, "ts": float(row["t"]) * _US,
                "args": {"value": row["value"]},
            })

    events.sort(key=lambda e: e["ts"])  # stable: per-track order survives

    metadata = [
        {"name": "process_name", "ph": "M", "pid": index, "ts": 0.0,
         "args": {"name": str(key)}}
        for key, index in sorted(pid_index.items(), key=lambda kv: kv[1])
    ]
    return metadata + events


def export_chrome(
    store: SpanStore,
    path: str | Path,
    horizon: float | None = None,
    counters: Sequence[Mapping[str, Any]] | None = None,
) -> Path:
    """Write the store as a trace-event JSON file Perfetto can load."""
    path = Path(path)
    document = {
        "traceEvents": chrome_events(store, horizon=horizon, counters=counters),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs.chrome", "clock": "virtual"},
    }
    # sort_keys keeps exports byte-identical across PYTHONHASHSEED values.
    path.write_text(json.dumps(document, sort_keys=True) + "\n", encoding="utf-8")
    return path


def validate_chrome_trace(source: str | Path | Mapping[str, Any]) -> dict[str, int]:
    """Validate a trace-event document; raises ``ValueError`` on violation.

    Checks: the file parses as JSON with a ``traceEvents`` list, every
    event carries the required fields, timestamps are non-decreasing in
    file order, duration events nest LIFO per (pid, tid) with matching
    names, and async begin/end events pair up per (cat, id). Returns
    summary counts for reporting.
    """
    if isinstance(source, Mapping):
        document: Any = source
    else:
        try:
            document = json.loads(Path(source).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{source}: not valid JSON: {exc}") from exc
    if isinstance(document, list):
        events = document
    elif isinstance(document, Mapping) and isinstance(document.get("traceEvents"), list):
        events = document["traceEvents"]
    else:
        raise ValueError("trace document must be a list or have a 'traceEvents' list")

    stacks: dict[tuple[Any, Any], list[str]] = {}
    async_open: dict[tuple[Any, Any], list[float]] = {}
    counts = {"events": 0, "duration_spans": 0, "async_spans": 0, "counter_events": 0}
    last_ts: float | None = None

    for i, event in enumerate(events):
        if not isinstance(event, Mapping):
            raise ValueError(f"event {i}: not an object")
        for key in ("name", "ph", "pid", "ts"):
            if key not in event:
                raise ValueError(f"event {i}: missing required field {key!r}")
        ph = event["ph"]
        ts = float(event["ts"])
        counts["events"] += 1
        if ph == "M":
            continue
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event {i}: timestamp {ts} decreases (previous {last_ts})"
            )
        last_ts = ts
        track = (event["pid"], event.get("tid"))
        if ph == "B":
            stacks.setdefault(track, []).append(str(event["name"]))
        elif ph == "E":
            stack = stacks.get(track) or []
            if not stack:
                raise ValueError(f"event {i}: 'E' with no open 'B' on {track}")
            opened = stack.pop()
            if opened != str(event["name"]):
                raise ValueError(
                    f"event {i}: 'E' for {event['name']!r} but "
                    f"{opened!r} is open on {track}"
                )
            counts["duration_spans"] += 1
        elif ph == "b":
            key = (event.get("cat"), event.get("id"))
            if key[1] is None:
                raise ValueError(f"event {i}: async 'b' without an id")
            async_open.setdefault(key, []).append(ts)
        elif ph == "e":
            key = (event.get("cat"), event.get("id"))
            starts = async_open.get(key) or []
            if not starts:
                raise ValueError(f"event {i}: async 'e' with no open 'b' for {key}")
            started = starts.pop()
            if ts < started:
                raise ValueError(f"event {i}: async span ends before it begins")
            counts["async_spans"] += 1
        elif ph == "C":
            counts["counter_events"] += 1  # self-contained, but worth counting
        elif ph in ("X", "i", "I", "s", "t", "f"):
            continue  # self-contained phases need no pairing
        else:
            raise ValueError(f"event {i}: unknown phase {ph!r}")

    unclosed = [track for track, stack in stacks.items() if stack]
    if unclosed:
        raise ValueError(f"unmatched 'B' events on tracks {unclosed[:5]}")
    dangling = [key for key, starts in async_open.items() if starts]
    if dangling:
        raise ValueError(f"unmatched async 'b' events for {dangling[:5]}")
    counts["processes"] = len({e["pid"] for e in events if isinstance(e, Mapping)})
    return counts


__all__ = ["ASYNC_KINDS", "chrome_events", "export_chrome", "validate_chrome_trace"]
