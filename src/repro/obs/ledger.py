"""Append-only perf ledger: BENCH records in, trends and regression flags out.

The benchmark suite writes schema-2 ``BENCH_<name>.json`` summaries through
:func:`benchmarks._util.emit`; each carries a ``metrics`` section (named
scalar measurements) and a ``meta`` stamp (commit, network profile, worker
count, protocol, host). ``repro perf record`` flattens those into one
JSONL ledger — one line per (bench, metric) observation — and
``repro perf trend`` / ``repro perf check`` analyze the series:

* the **noise band** of a series is ``max(k * 1.4826 * MAD, floor * |median|)``
  over its history (all but the latest observation) — robust to outliers,
  never tighter than a relative floor so short flat histories don't
  produce zero-width bands;
* the latest observation is a **regression** when it falls outside the
  band in the metric's bad direction (``direction`` is stored per record
  and inferred from the metric name when a benchmark doesn't say).

Like the timeline loader, ingest is lenient: malformed or legacy (schema-1)
records are skipped and counted with one summary warning, so an old
``benchmarks/results/`` directory doesn't wedge the ledger.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
import warnings
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Ledger line schema version.
SCHEMA_VERSION = 1

#: Default ledger location (append-only JSONL, one observation per line).
DEFAULT_LEDGER = Path("benchmarks") / "results" / "perf-ledger.jsonl"

#: Metric-name fragments that mean "bigger is better".
_HIGHER_HINTS = ("throughput", "per_s", "speedup", "rate", "ops", "gain", "txn_s")

__all__ = [
    "DEFAULT_LEDGER",
    "LedgerRecord",
    "SCHEMA_VERSION",
    "Trend",
    "append_records",
    "bench_records",
    "collect_meta",
    "infer_direction",
    "load_ledger",
    "mad",
    "median",
    "trends",
]


def infer_direction(metric: str) -> str:
    """``"higher"`` or ``"lower"`` (is better), inferred from the name.

    Throughput-ish names are higher-is-better; everything else (latencies,
    wall times, byte counts — the common case in this suite) is lower.
    """
    lowered = metric.lower()
    if any(hint in lowered for hint in _HIGHER_HINTS):
        return "higher"
    return "lower"


@dataclass(frozen=True)
class LedgerRecord:
    """One observation of one metric of one benchmark."""

    bench: str
    metric: str
    value: float
    unit: str = ""
    direction: str = "lower"
    meta: dict[str, Any] = field(default_factory=dict)

    def to_line(self) -> str:
        record = {
            "schema": SCHEMA_VERSION,
            "bench": self.bench,
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
            "meta": self.meta,
        }
        return json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)


def _parse_record(obj: Any) -> LedgerRecord | str:
    """A :class:`LedgerRecord`, or an error string for warn-skip."""
    if not isinstance(obj, dict):
        return "not an object"
    if obj.get("schema") != SCHEMA_VERSION:
        return f"unsupported ledger schema {obj.get('schema')!r}"
    bench = obj.get("bench")
    metric = obj.get("metric")
    value = obj.get("value")
    if not isinstance(bench, str) or not bench:
        return "missing 'bench'"
    if not isinstance(metric, str) or not metric:
        return "missing 'metric'"
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return f"non-numeric value {value!r}"
    direction = obj.get("direction") or infer_direction(metric)
    if direction not in ("higher", "lower"):
        return f"bad direction {direction!r}"
    meta = obj.get("meta")
    return LedgerRecord(
        bench=bench,
        metric=metric,
        value=float(value),
        unit=str(obj.get("unit") or ""),
        direction=direction,
        meta=meta if isinstance(meta, dict) else {},
    )


def append_records(path: str | Path, records: Iterable[LedgerRecord]) -> int:
    """Append records to the JSONL ledger; returns how many were written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("a", encoding="utf-8") as fh:
        for record in records:
            fh.write(record.to_line() + "\n")
            count += 1
    return count


def load_ledger(path: str | Path) -> tuple[list[LedgerRecord], int]:
    """Parse the ledger leniently; returns ``(records, skipped_count)``.

    Corrupt or unsupported lines are skipped and counted with a single
    summary :class:`RuntimeWarning`, mirroring the timeline loader. A
    missing ledger is simply empty — a fresh checkout has no history yet.
    """
    records: list[LedgerRecord] = []
    skipped = 0
    first_bad: tuple[int, str] | None = None
    path = Path(path)
    if not path.exists():
        return records, skipped
    with path.open("r", encoding="utf-8") as fh:
        for line_number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                skipped += 1
                if first_bad is None:
                    first_bad = (line_number, f"bad JSONL line: {exc}")
                continue
            parsed = _parse_record(obj)
            if isinstance(parsed, str):
                skipped += 1
                if first_bad is None:
                    first_bad = (line_number, parsed)
                continue
            records.append(parsed)
    if skipped:
        line_number, why = first_bad  # type: ignore[misc]
        warnings.warn(
            f"{path}: skipped {skipped} ledger line(s); "
            f"first at line {line_number}: {why}",
            RuntimeWarning,
            stacklevel=2,
        )
    return records, skipped


# ------------------------------------------------------------------ BENCH ingest
def bench_records(doc: Any, source: str = "") -> tuple[list[LedgerRecord], list[str]]:
    """Flatten one schema-2 BENCH document into ledger records.

    Returns ``(records, warnings)``; legacy (schema-1) documents yield no
    records and one warning, so ``repro perf record`` can sweep a results
    directory that still holds old files.
    """
    where = source or "<bench>"
    if not isinstance(doc, dict):
        return [], [f"{where}: not a JSON object"]
    if doc.get("schema") != 2:
        return [], [
            f"{where}: legacy BENCH document (schema "
            f"{doc.get('schema')!r}); skipped — re-run the benchmark"
        ]
    bench = doc.get("name")
    if not isinstance(bench, str) or not bench:
        return [], [f"{where}: missing benchmark name"]
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        return [], [f"{where}: no metrics section"]
    meta = doc.get("meta")
    meta = meta if isinstance(meta, dict) else {}
    records: list[LedgerRecord] = []
    problems: list[str] = []
    for metric in sorted(metrics):
        entry = metrics[metric]
        if isinstance(entry, dict):
            value = entry.get("value")
            unit = str(entry.get("unit") or "")
            direction = entry.get("direction") or infer_direction(metric)
        else:
            value = entry
            unit = ""
            direction = infer_direction(metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{where}: metric {metric!r} is not numeric; skipped")
            continue
        if direction not in ("higher", "lower"):
            problems.append(
                f"{where}: metric {metric!r} has bad direction {direction!r}; skipped"
            )
            continue
        records.append(
            LedgerRecord(
                bench=bench,
                metric=metric,
                value=float(value),
                unit=unit,
                direction=direction,
                meta=meta,
            )
        )
    return records, problems


# -------------------------------------------------------------------- meta stamp
def collect_meta(
    profile: str | None = None,
    protocol: str | None = None,
    workers: int | None = None,
) -> dict[str, Any]:
    """The provenance stamp benchmarks attach to every BENCH document.

    The commit hash comes from ``REPRO_COMMIT`` (CI sets it) or
    ``git rev-parse``, falling back to ``"unknown"`` outside a checkout.
    """
    commit = os.environ.get("REPRO_COMMIT")
    if not commit:
        try:
            commit = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                check=False,
            ).stdout.strip() or "unknown"
        except OSError:
            commit = "unknown"
    return {
        "commit": commit,
        "profile": profile,
        "protocol": protocol,
        "workers": workers,
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
            "system": platform.system(),
        },
        "recorded_at": datetime.datetime.now(datetime.UTC).isoformat(
            timespec="seconds"
        ),
    }


# ------------------------------------------------------------------------ trends
def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation (unscaled)."""
    center = median(values)
    return median([abs(v - center) for v in values])


@dataclass(frozen=True)
class Trend:
    """The analyzed state of one (bench, metric) series."""

    bench: str
    metric: str
    unit: str
    direction: str
    n: int
    #: Median of the history (everything but the latest observation).
    center: float
    #: Robust spread of the history (1.4826 * MAD).
    spread: float
    #: Latest observation.
    last: float
    #: Allowed deviation from the center before flagging.
    band: float
    #: ``"ok" | "regression" | "improved" | "insufficient"``.
    status: str

    @property
    def delta_pct(self) -> float:
        if self.center == 0.0:
            return 0.0
        return (self.last - self.center) / abs(self.center) * 100.0


def trends(
    records: Sequence[LedgerRecord],
    min_history: int = 3,
    mad_k: float = 3.0,
    rel_floor: float = 0.10,
) -> list[Trend]:
    """Analyze every (bench, metric) series in ledger (= chronological) order.

    A series needs ``min_history`` observations *before* the latest one to
    be judged; younger series report ``status="insufficient"`` (never a
    failure — a fresh ledger must not gate CI red).
    """
    series: dict[tuple[str, str], list[LedgerRecord]] = {}
    for record in records:
        series.setdefault((record.bench, record.metric), []).append(record)

    out: list[Trend] = []
    for (bench, metric), observations in sorted(series.items()):
        values = [record.value for record in observations]
        latest = observations[-1]
        if len(values) < min_history + 1:
            out.append(
                Trend(
                    bench=bench,
                    metric=metric,
                    unit=latest.unit,
                    direction=latest.direction,
                    n=len(values),
                    center=values[-1],
                    spread=0.0,
                    last=values[-1],
                    band=0.0,
                    status="insufficient",
                )
            )
            continue
        history = values[:-1]
        center = median(history)
        spread = 1.4826 * mad(history)
        band = max(mad_k * spread, rel_floor * abs(center))
        delta = values[-1] - center
        if latest.direction == "higher":
            bad, good = delta < -band, delta > band
        else:
            bad, good = delta > band, delta < -band
        status = "regression" if bad else ("improved" if good else "ok")
        out.append(
            Trend(
                bench=bench,
                metric=metric,
                unit=latest.unit,
                direction=latest.direction,
                n=len(values),
                center=center,
                spread=spread,
                last=values[-1],
                band=band,
                status=status,
            )
        )
    return out
