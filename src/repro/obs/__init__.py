"""Observability: metrics registry, JSONL timelines, report rendering.

The paper's evaluation (§4) is entirely measured protocol behaviour; this
package is the measuring instrument. :class:`MetricsRegistry` holds
counters, gauges and fixed-bucket latency histograms; the simulation world
and the protocol layers record into it when a run enables metrics
(:class:`repro.cluster.harness.ClusterSpec` ``metrics=True``, the default);
:mod:`repro.obs.timeline` serializes a finished run to JSONL; and
:mod:`repro.obs.report` renders the tables behind ``repro report``.

Disabled metrics cost one dict hit and a no-op call per instrumentation
point (:data:`NULL_REGISTRY`), and recording never reads RNGs or mutates
schedules — instrumented and uninstrumented runs are byte-identical.

:mod:`repro.obs.tracing` adds causal request tracing on the same passivity
contract: :class:`Tracer` records :class:`repro.obs.spans.Span` trees per
client request, :func:`critical_path` attributes wall time to the §3.4
``M``/``E``/``m`` components, and :mod:`repro.obs.chrome` exports
Perfetto-loadable trace-event files.
"""

from repro.obs.chrome import chrome_events, export_chrome, validate_chrome_trace
from repro.obs.ledger import (
    LedgerRecord,
    Trend,
    append_records,
    bench_records,
    collect_meta,
    load_ledger,
    trends,
)
from repro.obs.prof import (
    NULL_PROFILER,
    FrameStat,
    NullProfiler,
    SimProfiler,
    attribution,
    collapsed_lines,
    counter_samples,
    write_collapsed,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    Scope,
)
from repro.obs.report import render_comparison, render_report
from repro.obs.spans import Span, SpanStore, SpanTree
from repro.obs.timeline import RunExport, export_run, load_export
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    RequestPath,
    Tracer,
    analyze_requests,
    conformance,
    critical_path,
    summarize_paths,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "FrameStat",
    "Gauge",
    "Histogram",
    "LedgerRecord",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullProfiler",
    "NullRegistry",
    "NullTracer",
    "RequestPath",
    "RunExport",
    "Scope",
    "SimProfiler",
    "Span",
    "SpanStore",
    "SpanTree",
    "Tracer",
    "Trend",
    "analyze_requests",
    "append_records",
    "attribution",
    "bench_records",
    "chrome_events",
    "collapsed_lines",
    "collect_meta",
    "conformance",
    "counter_samples",
    "critical_path",
    "export_chrome",
    "export_run",
    "load_export",
    "load_ledger",
    "render_comparison",
    "render_report",
    "summarize_paths",
    "trends",
    "validate_chrome_trace",
    "write_collapsed",
]
