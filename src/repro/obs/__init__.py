"""Observability: metrics registry, JSONL timelines, report rendering.

The paper's evaluation (§4) is entirely measured protocol behaviour; this
package is the measuring instrument. :class:`MetricsRegistry` holds
counters, gauges and fixed-bucket latency histograms; the simulation world
and the protocol layers record into it when a run enables metrics
(:class:`repro.cluster.harness.ClusterSpec` ``metrics=True``, the default);
:mod:`repro.obs.timeline` serializes a finished run to JSONL; and
:mod:`repro.obs.report` renders the tables behind ``repro report``.

Disabled metrics cost one dict hit and a no-op call per instrumentation
point (:data:`NULL_REGISTRY`), and recording never reads RNGs or mutates
schedules — instrumented and uninstrumented runs are byte-identical.
"""

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    Scope,
)
from repro.obs.report import render_comparison, render_report
from repro.obs.timeline import RunExport, export_run, load_export

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "RunExport",
    "Scope",
    "export_run",
    "load_export",
    "render_comparison",
    "render_report",
]
