"""JSONL timeline export/import for instrumented runs.

One run exports to one JSON-Lines file, self-describing record by record:

* ``{"record": "meta", ...}`` — run identity (seed, replica/client counts,
  profile name) so two exports can be compared meaningfully;
* ``{"record": "counter" | "gauge", "name": ..., "value": ...}``;
* ``{"record": "hist", "name": ..., **Histogram.snapshot()}``;
* ``{"record": "event", "t": ..., "kind": ..., "src": ..., "dst": ...,
  "type": ...}`` — one per trace event when tracing was enabled;
* ``{"record": "span", ...}`` — one per causal span
  (:meth:`repro.obs.spans.Span.to_record`) when request tracing was enabled;
* ``{"record": "prof", "path": [...], "calls": ..., "sim_ns": ...,
  "host_ns": ...}`` — one per profiler frame path when the run was
  profiled (:mod:`repro.obs.prof`), powering the report's hottest-handlers
  table;
* ``{"record": "result", ...}`` — the :class:`repro.cluster.metrics.RunResult`
  aggregates.

The format is append-only and line-oriented on purpose: exports of long
runs stream, partial files stay parseable up to the truncation point, and
``grep`` works on them. :func:`load_export` reads a file back into a
:class:`RunExport` for the ``repro report`` renderer and for tests; it is
lenient — blank, corrupt, or unknown lines are *skipped and counted*
(``RunExport.skipped``, one summary warning), so a truncated or
hand-edited export still loads as far as it goes.
"""

from __future__ import annotations

import json
import warnings
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, IO, TYPE_CHECKING

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.spans import SpanStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.harness import Cluster


def _dump(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def registry_records(registry: MetricsRegistry) -> Iterator[dict[str, Any]]:
    """Yield one JSON-serializable record per instrument in ``registry``."""
    for name, value in registry.counters().items():
        yield {"record": "counter", "name": name, "value": value}
    for name, value in registry.gauges().items():
        yield {"record": "gauge", "name": name, "value": value}
    for name, hist in registry.histograms().items():
        yield {"record": "hist", "name": name, **hist.snapshot()}


def trace_records(events: Iterable[Any]) -> Iterator[dict[str, Any]]:
    """Yield one record per :class:`repro.sim.trace.TraceEvent`.

    The message payload is reduced to its type name — the timeline is for
    traffic-shape analysis; full payloads stay in the in-memory trace.
    """
    for event in events:
        detail = event.detail
        yield {
            "record": "event",
            "t": event.time,
            "kind": event.kind,
            "src": event.src,
            "dst": event.dst,
            "type": detail if isinstance(detail, str) else type(detail).__name__,
        }


def export_run(
    cluster: "Cluster",
    path: str | Path,
    include_events: bool = True,
) -> Path:
    """Write one cluster run's metrics (and trace, if recorded) as JSONL."""
    from repro.cluster.metrics import collect  # local import: cycle guard

    path = Path(path)
    spec = cluster.spec
    result = collect(cluster)
    prof_records: list[dict[str, Any]] = []
    profiler = getattr(cluster, "profiler", None)
    if profiler is not None and profiler.enabled:
        from repro.obs.prof.export import frame_rows  # local import: cycle guard

        prof_records = [
            {
                "record": "prof",
                "path": list(frame_path),
                "calls": calls,
                "sim_ns": sim_ns,
                "host_ns": host_ns,
            }
            for frame_path, calls, sim_ns, host_ns in frame_rows(profiler)
        ]
    with path.open("w", encoding="utf-8") as fh:
        _write_records(
            fh,
            meta={
                "record": "meta",
                "seed": spec.seed,
                "n_replicas": spec.n_replicas,
                "n_clients": len(cluster.clients),
                "profile": spec.profile.name,
                "state_mode": spec.state_mode.value,
                "sim_time": cluster.kernel.now,
            },
            registry=cluster.metrics,
            events=cluster.trace if (include_events and cluster.trace is not None) else (),
            spans=cluster.tracer.store.to_records() if cluster.tracer.enabled else (),
            prof=prof_records,
            result={
                "record": "result",
                "duration": result.duration,
                "total_requests": result.total_requests,
                "total_steps": result.total_steps,
                "aborted_steps": result.aborted_steps,
                "total_retransmits": result.total_retransmits,
                "total_messages": result.total_messages,
                "total_bytes": result.total_bytes,
                "throughput": result.throughput,
                "rrt_mean": result.rrt.mean if result.rrt else None,
                "trt_mean": result.trt.mean if result.trt else None,
            },
        )
    return path


def _write_records(
    fh: IO[str],
    meta: dict[str, Any],
    registry: MetricsRegistry,
    events: Iterable[Any],
    result: dict[str, Any],
    spans: Iterable[dict[str, Any]] = (),
    prof: Iterable[dict[str, Any]] = (),
) -> None:
    fh.write(_dump(meta) + "\n")
    for record in registry_records(registry):
        fh.write(_dump(record) + "\n")
    for record in trace_records(events):
        fh.write(_dump(record) + "\n")
    for record in spans:
        fh.write(_dump(record) + "\n")
    for record in prof:
        fh.write(_dump(record) + "\n")
    fh.write(_dump(result) + "\n")


@dataclass
class RunExport:
    """A parsed JSONL export."""

    path: str = ""
    meta: dict[str, Any] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)
    spans: list[dict[str, Any]] = field(default_factory=list)
    #: Profiler frame records (``{"path", "calls", "sim_ns", "host_ns"}``).
    prof: list[dict[str, Any]] = field(default_factory=list)
    result: dict[str, Any] = field(default_factory=dict)
    #: Lines :func:`load_export` could not parse (blank lines excluded).
    skipped: int = 0

    def span_store(self) -> SpanStore:
        """Rebuild a :class:`repro.obs.spans.SpanStore` from the span
        records (for tree reconstruction and critical-path analysis)."""
        return SpanStore.from_records(self.spans)

    def message_types(self) -> list[str]:
        """Every message type that appears in send/deliver/drop counters."""
        types: set[str] = set()
        for name in self.counters:
            for prefix in ("msg.send.", "msg.deliver.", "msg.drop."):
                if name.startswith(prefix):
                    types.add(name[len(prefix):])
        return sorted(types)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)


def load_export(path: str | Path) -> RunExport:
    """Parse a JSONL export written by :func:`export_run`.

    Lenient by design: a timeline may be truncated mid-line (a run was
    killed), hold records from a newer schema, or have been edited by hand.
    Unparseable and unrecognized lines are skipped and counted in
    :attr:`RunExport.skipped`; one summary warning reports the count and
    the first offending line number.
    """
    export = RunExport(path=str(path))
    first_bad: tuple[int, str] | None = None
    with Path(path).open("r", encoding="utf-8") as fh:
        for line_number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                export.skipped += 1
                if first_bad is None:
                    first_bad = (line_number, f"bad JSONL line: {exc}")
                continue
            kind = record.get("record") if isinstance(record, dict) else None
            if kind == "meta":
                export.meta = record
            elif kind == "counter":
                export.counters[record["name"]] = int(record["value"])
            elif kind == "gauge":
                export.gauges[record["name"]] = float(record["value"])
            elif kind == "hist":
                export.histograms[record["name"]] = Histogram.from_snapshot(record)
            elif kind == "event":
                export.events.append(record)
            elif kind == "span":
                export.spans.append(record)
            elif kind == "prof":
                export.prof.append(record)
            elif kind == "result":
                export.result = record
            else:
                export.skipped += 1
                if first_bad is None:
                    first_bad = (line_number, f"unknown record kind {kind!r}")
    if export.skipped:
        line_number, why = first_bad  # type: ignore[misc]
        warnings.warn(
            f"{path}: skipped {export.skipped} unparseable line(s); "
            f"first at line {line_number}: {why}",
            RuntimeWarning,
            stacklevel=2,
        )
    return export
