"""Command-line interface: regenerate the paper's evaluation from scratch.

``python -m repro experiments`` re-runs every table and figure of §4 and
prints a paper-vs-measured report in Markdown — EXPERIMENTS.md is exactly
this command's output. ``--quick`` trims sample counts for a fast smoke
run.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro import __version__
from repro.analysis.report import percent_change
from repro.lint.cli import add_lint_parser, lint_command
from repro.net.profiles import PROFILES, get_profile
from repro.parallel import pmap

KINDS = ("original", "read", "write")

TABLE1_PAPER_MS = {
    ("read_write", 3): 1.17,
    ("read_write", 5): 1.79,
    ("write_only", 3): 1.29,
    ("write_only", 5): 2.01,
    ("optimized", 3): 0.85,
    ("optimized", 5): 1.23,
}

#: Paper-reported T-Paxos throughput gains (%), Fig. 9 commentary, 3-req.
FIG9_PAPER_GAINS_3REQ = {
    "read_write": (42, 43, 45, 47, 57),
    "write_only": (52, 53, 77, 88, 97),
}


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _rrt_section(quick: bool, workers: int = 1) -> str:
    samples = 60 if quick else 300
    profiles = ("sysnet", "berkeley_princeton", "wan")
    params = [
        {"profile": name, "kind": kind, "samples": samples, "seed": 1}
        for name in profiles
        for kind in KINDS
    ]
    results = iter(pmap("rrt", params, workers=workers))
    sections = []
    for name in profiles:
        profile = get_profile(name)
        rows = []
        for kind in KINDS:
            rrt = next(results)["rrt"]
            paper = profile.paper_rrt[kind]
            rows.append(
                [
                    kind,
                    f"{paper * 1e3:.3f}",
                    f"{rrt['mean'] * 1e3:.3f}",
                    f"±{rrt['ci99'] * 1e3:.4f}",
                    f"{percent_change(paper, rrt['mean']):+.1f}%",
                ]
            )
        sections.append(
            f"### {name} — request response time (§4.1)\n\n"
            + _md_table(
                ["kind", "paper (ms)", "measured (ms)", "99% CI (ms)", "delta"], rows
            )
        )
    return "\n\n".join(sections)


def _throughput_section(quick: bool, workers: int = 1) -> str:
    total = 400 if quick else 1000
    figures = (
        ("sysnet", (1, 2, 4, 8, 16), "Fig. 5"),
        ("sysnet", (8, 16, 32, 64, 128), "Fig. 6"),
        ("berkeley_princeton", (1, 2, 4, 8, 16), "Fig. 7"),
        ("wan", (1, 2, 4, 8, 16), "Fig. 8"),
    )
    params = [
        {"profile": name, "kind": kind, "n_clients": c,
         "total_requests": total, "seed": 3}
        for name, clients, _ in figures
        for c in clients
        for kind in ("read", "write", "original")
    ]
    results = iter(pmap("throughput", params, workers=workers))
    sections = []
    for name, clients, figure in figures:
        rows = []
        for c in clients:
            row: list[object] = [c]
            for _kind in ("read", "write", "original"):
                row.append(f"{next(results)['throughput']:.0f}")
            rows.append(row)
        sections.append(
            f"### {figure} — throughput on {name} (requests/s)\n\n"
            + _md_table(["clients", "read", "write", "original"], rows)
        )
    return "\n\n".join(sections)


def _table1_section(quick: bool, workers: int = 1) -> str:
    samples = 60 if quick else 200
    cells = list(TABLE1_PAPER_MS.items())
    params = [
        {"mode": mode, "requests_per_txn": k, "samples": samples, "seed": 2}
        for (mode, k), _ in cells
    ]
    results = pmap("txn_rrt", params, workers=workers)
    rows = []
    measured = {}
    for ((mode, k), paper_ms), result in zip(cells, results, strict=True):
        trt = result["trt"]
        measured[(mode, k)] = trt["mean"]
        rows.append(
            [
                f"{mode} {k}-req",
                f"{paper_ms:.2f}",
                f"{trt['mean'] * 1e3:.2f}",
                f"±{trt['ci99'] * 1e3:.3f}",
                f"{percent_change(paper_ms * 1e-3, trt['mean']):+.1f}%",
            ]
        )
    gains = []
    for k in (3, 5):
        for base in ("read_write", "write_only"):
            reduction = 1 - measured[("optimized", k)] / measured[(base, k)]
            gains.append(f"vs {base} {k}-req: -{reduction * 100:.0f}%")
    return (
        "### Table 1 — transaction response time (§4.2)\n\n"
        + _md_table(
            ["operation", "paper (ms)", "measured (ms)", "99% CI (ms)", "delta"], rows
        )
        + "\n\nT-Paxos TRT reduction (paper: 28%, 34%, 31%, 39%): "
        + "; ".join(gains)
    )


def _fig9_section(quick: bool, workers: int = 1) -> str:
    total = 200 if quick else 400
    modes = ("read_write", "write_only", "optimized")
    params = [
        {"mode": mode, "requests_per_txn": k, "n_clients": c,
         "total_txns": total, "seed": 5}
        for k in (3, 5)
        for c in (1, 2, 4, 8, 16)
        for mode in modes
    ]
    flat = iter(pmap("txn_throughput", params, workers=workers))
    sections = []
    for k in (3, 5):
        rows = []
        for c in (1, 2, 4, 8, 16):
            results = {mode: next(flat)["step_throughput"] for mode in modes}
            opt = results["optimized"]
            rows.append(
                [
                    c,
                    f"{results['read_write']:.0f}",
                    f"{results['write_only']:.0f}",
                    f"{opt:.0f}",
                    f"+{(opt / results['read_write'] - 1) * 100:.0f}%",
                    f"+{(opt / results['write_only'] - 1) * 100:.0f}%",
                ]
            )
        sections.append(
            f"### Fig. 9{'a' if k == 3 else 'b'} — {k}-request transaction "
            "throughput (txn/s)\n\n"
            + _md_table(
                ["clients", "read/write", "write-only", "T-Paxos",
                 "gain vs r/w", "gain vs w-only"],
                rows,
            )
        )
    return "\n\n".join(sections)


def build_experiments_report(quick: bool = False, workers: int = 1) -> str:
    started = time.time()
    body = "\n\n".join(
        [
            "# EXPERIMENTS — paper vs. measured",
            "Regenerate this file with `python -m repro experiments > EXPERIMENTS.md`"
            " (add `--quick` for a fast smoke run). Every number below is produced"
            " by the deterministic simulator; latency targets reproduce the paper"
            " within a few percent, throughput reproduces the paper's *shapes*"
            " (orderings, crossovers, peaks) — absolute throughput depends on"
            " testbed constants the paper does not fully specify.",
            "## Request response time (§4.1)",
            _rrt_section(quick, workers),
            "## Throughput (Figs. 5-8)",
            _throughput_section(quick, workers),
            "## Transactions (§4.2)",
            _table1_section(quick, workers),
            _fig9_section(quick, workers),
            "## Ablations",
            "Ablation benches (not in the paper's tables, called out in its text)"
            " live in `benchmarks/`: leader-switch sensitivity (§3.6), t > 1"
            " degradation under wide-area variance (§4.3), and state-transfer"
            " payload/latency vs state size (§3.3). Run"
            " `pytest benchmarks/ --benchmark-only`; results land in"
            " `benchmarks/results/`.",
            f"_Generated in {time.time() - started:.1f}s of host time._",
        ]
    )
    return body


def run_command(args: argparse.Namespace) -> int:
    """One instrumented run: print the result summary, optionally export the
    JSONL timeline for ``repro report``.

    ``--groups N`` builds a sharded cluster: clients work a spread of KV
    keys (instead of the noop service's keyless ops, which would all land
    on group 0) so every replication group coordinates a slice of the
    traffic and the per-group report tables have something to show.
    """
    from repro.client.workload import single_kind_steps
    from repro.cluster.harness import Cluster, ClusterSpec
    from repro.cluster.metrics import collect
    from repro.types import RequestKind

    profile = get_profile(args.profile)
    kind = RequestKind(args.kind)
    per_client = max(1, args.requests // args.clients)
    spec = ClusterSpec(
        profile=profile,
        seed=args.seed,
        trace=args.trace,
        tracing=args.tracing or bool(args.chrome),
        profiling=args.profiling,
        fsync=args.fsync,
        groups=args.groups,
    )
    if args.groups > 1:
        from repro.services.kvstore import KVStoreService

        def op(index: int):
            key = f"k{index % (4 * args.groups)}"
            if kind is RequestKind.READ:
                return ("get", key)
            return ("put", key, f"v{index}")

        steps = [
            single_kind_steps(kind, per_client, op=op)
            for _ in range(args.clients)
        ]
        cluster = Cluster(spec, steps, service_factory=KVStoreService)
    else:
        steps = [single_kind_steps(kind, per_client) for _ in range(args.clients)]
        cluster = Cluster(spec, steps)
    cluster.run()
    print(collect(cluster).describe())
    if args.export:
        path = cluster.export_timeline(args.export)
        print(f"timeline: {path}")
    if args.chrome:
        path = cluster.export_chrome(args.chrome)
        print(f"chrome trace: {path} (load at ui.perfetto.dev)")
    return 0


def trace_command(args: argparse.Namespace) -> int:
    """Run one traced cluster and render per-request waterfalls plus the
    critical-path and §3.4 formula-conformance summaries."""
    from repro.analysis.model import LatencyModelInputs
    from repro.client.workload import single_kind_steps
    from repro.cluster.harness import Cluster, ClusterSpec
    from repro.obs.tracing import (
        COMPONENTS,
        analyze_requests,
        conformance,
        summarize_paths,
    )
    from repro.types import RequestKind
    from repro.util.tables import format_table

    profile = get_profile(args.profile)
    kind = RequestKind(args.kind)
    per_client = max(1, args.requests // args.clients)
    spec = ClusterSpec(profile=profile, seed=args.seed, tracing=True)
    steps = [single_kind_steps(kind, per_client) for _ in range(args.clients)]
    cluster = Cluster(spec, steps)
    cluster.run()

    store = cluster.tracer.store
    shown = 0
    for root in store.roots():
        if root.kind != "request":
            continue
        if shown >= args.show:
            break
        print(store.tree(root.trace_id).render_waterfall())
        print()
        shown += 1

    paths = analyze_requests(store)
    rows: list[list[object]] = []
    for k, s in summarize_paths(paths).items():
        rows.append([k, "mean", s.n, f"{s.mean_total * 1e3:.3f}",
                     *(f"{s.mean[c] * 1e3:.3f}" for c in COMPONENTS),
                     s.incomplete or ""])
        rows.append([k, "p95", "", f"{s.p95_total * 1e3:.3f}",
                     *(f"{s.p95[c] * 1e3:.3f}" for c in COMPONENTS), ""])
    print("Critical-path attribution (ms)")
    print(format_table(["kind", "stat", "n", "total", *COMPONENTS, "incomplete"], rows))

    # Model inputs derived from the profile's paper RRTs (original = 2M + E,
    # write = 2M + E + 2m, with E = 0 in this command's workloads).
    original = profile.paper_rrt.get("original")
    write = profile.paper_rrt.get("write")
    if original is not None and write is not None:
        model = LatencyModelInputs(
            client_replica=original / 2,
            replica_replica=(write - original) / 2,
            execute=0.0,
        )
        crows = []
        for k, row in conformance(paths, model, xpaxos_reads=spec.xpaxos_reads).items():
            crows.append([k, row.formula, row.n,
                          f"{row.measured_mean * 1e3:.3f}",
                          f"{row.expected * 1e3:.3f}",
                          f"{row.deviation * 1e3:+.3f}"])
        if crows:
            print()
            print("Latency-formula conformance (§3.4, ms; model from paper RRTs)")
            print(format_table(["kind", "formula", "n", "measured", "model", "dev"],
                               crows))

    if args.chrome:
        print()
        path = cluster.export_chrome(args.chrome)
        print(f"chrome trace: {path} (load at ui.perfetto.dev)")
    if args.export:
        path = cluster.export_timeline(args.export)
        print(f"timeline: {path}")
    return 0


def chaos_command(args: argparse.Namespace) -> int:
    """Fan a nemesis-schedule sweep over seeds, check invariants, report.

    Exit status 1 when any seed violated an invariant (CI gate)."""
    import dataclasses

    from repro.chaos import (
        ChaosOptions,
        dump_summary,
        render_report,
        run_chaos,
        shrink,
        to_summary,
    )

    options = ChaosOptions(
        protocol=args.protocol,
        n_replicas=args.replicas,
        n_clients=args.clients,
        requests_per_client=args.requests,
        horizon=args.horizon,
        intensity=args.intensity,
        allow_majority_loss=args.allow_majority_loss,
        tracing=args.tracing,
        mutation=args.mutation,
        fsync=args.fsync,
        storage_faults=args.storage_faults,
        groups=args.groups,
    )
    workers = args.workers
    if workers > 1 and args.tracing:
        # Traced trials keep their cluster for waterfall rendering, which
        # cannot cross a process boundary; fall back to the serial path.
        print("chaos: --tracing forces --workers 1", file=sys.stderr)
        workers = 1
    if workers > 1:
        # Each spec carries its own seed, so sharding the sweep across
        # workers cannot skew any trial's nemesis schedule.
        from repro.parallel import RunSpec, SweepOptions, run_sweep

        specs = [
            RunSpec(
                task="chaos_result",
                key=f"chaos/seed={seed:06d}",
                params={"seed": seed, "options": dataclasses.asdict(options)},
            )
            for seed in range(args.seed, args.seed + args.seeds)
        ]
        sweep = run_sweep(specs, SweepOptions(workers=workers))
        for record in sweep.failed():
            print(f"chaos: {record.spec.key}: {record.error}", file=sys.stderr)
        if not sweep.ok:
            return 2
        results = [record.result for record in sweep.records]
        if not args.quiet:
            for result in results:
                if not result.ok:
                    names = ",".join(sorted({v.invariant for v in result.violations}))
                    print(f"seed {result.seed}: VIOLATION ({names})", file=sys.stderr)
    else:
        results = []
        for seed in range(args.seed, args.seed + args.seeds):
            result = run_chaos(seed, options, keep_cluster=args.tracing)
            results.append(result)
            if not result.ok and not args.quiet:
                names = ",".join(sorted({v.invariant for v in result.violations}))
                print(f"seed {seed}: VIOLATION ({names})", file=sys.stderr)

    shrink_outcomes = []
    if args.shrink:
        for result in results:
            if result.ok:
                continue
            # Shrink without tracing: the minimization loop re-runs the
            # trial many times and only the final repro matters.
            outcome = shrink(
                result.schedule,
                dataclasses.replace(options, tracing=False),
                budget=args.shrink_budget,
            )
            shrink_outcomes.append(outcome)

    print(render_report(results, shrink_outcomes), end="")
    if args.summary:
        with open(args.summary, "w", encoding="utf-8") as fh:
            fh.write(dump_summary(to_summary(results, shrink_outcomes)))
        print(f"summary: {args.summary}")
    return 0 if all(r.ok for r in results) else 1


def sweep_command(args: argparse.Namespace) -> int:
    """Shard a run grid across worker processes and write the merged JSON.

    The ``results`` section of the output is byte-identical for any
    ``--workers`` value; wall-clock lives in the separate ``timing``
    section (drop it entirely with ``--no-timing`` for diff-friendly
    artifacts)."""
    import os

    from repro.parallel import (
        SweepOptions,
        calibration_grid,
        canonical_json,
        chaos_grid,
        figures_grid,
        merge_sweep,
        run_sweep,
        selftest_grid,
    )

    if args.grid == "chaos":
        protocols = tuple(p.strip() for p in args.protocols.split(",") if p.strip())
        specs = chaos_grid(
            seeds=args.seeds, first_seed=args.seed, protocols=protocols
        )
    elif args.grid == "figures":
        specs = figures_grid(quick=args.quick)
    elif args.grid == "selftest":
        specs = selftest_grid(runs=args.seeds)
    else:
        specs = calibration_grid(samples=args.samples)

    options = SweepOptions(
        workers=args.workers, timeout=args.timeout, retries=args.retries
    )
    sweep = run_sweep(specs, options)
    doc = merge_sweep(sweep, name=f"sweep_{args.grid}")
    if args.no_timing:
        del doc["timing"]

    out = args.out or os.path.join(
        "benchmarks", "results", f"BENCH_sweep_{args.grid}.json"
    )
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(canonical_json(doc))

    aggregate = doc["results"]["aggregate"]
    print(
        f"sweep {args.grid}: {aggregate['ok']}/{aggregate['total']} ok, "
        f"workers={sweep.workers}, wall={sweep.wall:.2f}s"
    )
    for key in aggregate["failed"]:
        print(f"  FAILED {key}", file=sys.stderr)
    print(f"merged: {out}")

    if args.ledger:
        from repro.obs.ledger import LedgerRecord, append_records, collect_meta

        meta = collect_meta(workers=sweep.workers)
        count = append_records(
            args.ledger,
            [
                LedgerRecord(
                    bench=f"sweep_{args.grid}", metric="wall_s",
                    value=sweep.wall, unit="s", direction="lower", meta=meta,
                ),
                LedgerRecord(
                    bench=f"sweep_{args.grid}", metric="runs_ok_rate",
                    value=aggregate["ok"] / max(1, aggregate["total"]),
                    unit="", direction="higher", meta=meta,
                ),
            ],
        )
        print(f"recorded {count} metric(s) into {args.ledger}")
    return 0 if sweep.ok else 1


def profile_command(args: argparse.Namespace) -> int:
    """Profile one run: hottest-handlers table, §3.4 E/m/M attribution, and
    (optionally) a collapsed flamegraph file plus a chrome trace with
    per-actor sim-CPU counter tracks."""
    from repro.client.workload import single_kind_steps
    from repro.cluster.harness import Cluster, ClusterSpec
    from repro.obs.prof import attribution, frame_rows, write_collapsed
    from repro.types import RequestKind
    from repro.util.tables import format_table

    profile = get_profile(args.profile)
    kind = RequestKind(args.kind)
    per_client = max(1, args.requests // args.clients)
    spec = ClusterSpec(
        profile=profile,
        seed=args.seed,
        execute_time=args.execute_time,
        profiling=True,
        tracing=bool(args.chrome),
    )
    steps = [single_kind_steps(kind, per_client) for _ in range(args.clients)]
    cluster = Cluster(spec, steps)
    cluster.run()

    rows = sorted(
        (row for row in frame_rows(cluster.profiler) if row[1]),
        key=lambda row: (-row[2], -row[3], row[0]),
    )
    table = [
        [";".join(path), calls, f"{sim_ns / 1e6:.3f}", f"{host_ns / 1e6:.3f}"]
        for path, calls, sim_ns, host_ns in rows[: args.top]
    ]
    print(f"Hottest handlers (top {len(table)}, exclusive)")
    print(format_table(["frame", "calls", "sim ms", "host ms"], table))

    # §3.4 attribution: M = client<->replica messaging, E = execution,
    # m = replica<->replica messaging, measured in accounted sim-CPU.
    attributed = attribution(cluster.profiler)
    total = sum(seconds for _calls, seconds in attributed.values()) or 1.0
    arows = [
        [component, calls, f"{seconds * 1e3:.3f}", f"{seconds / total * 100:.1f}%"]
        for component, (calls, seconds) in attributed.items()
    ]
    print()
    print("Sim-CPU attribution by §3.4 component")
    print(format_table(["component", "calls", "sim ms", "share"], arows))

    if args.out:
        path = write_collapsed(cluster.profiler, args.out, metric=args.metric)
        print(f"\ncollapsed stacks ({args.metric}): {path} "
              "(render with flamegraph.pl or speedscope)")
    if args.chrome:
        path = cluster.export_chrome(args.chrome)
        print(f"chrome trace with counter tracks: {path} (load at ui.perfetto.dev)")
    if args.export:
        path = cluster.export_timeline(args.export)
        print(f"timeline: {path}")
    return 0


def perf_command(args: argparse.Namespace) -> int:
    """The perf-regression ledger: record BENCH results, show trends, gate CI."""
    from pathlib import Path

    from repro.obs.ledger import (
        append_records,
        bench_records,
        load_ledger,
        trends,
    )
    from repro.util.tables import format_table

    ledger = Path(args.ledger)

    if args.perf_command == "record":
        import json

        paths = [Path(p) for p in args.paths]
        if not paths:
            paths = sorted(Path(args.results_dir).glob("BENCH_*.json"))
        collected = []
        for path in paths:
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                print(f"repro perf: skipping {path}: {exc}", file=sys.stderr)
                continue
            records, warnings = bench_records(doc, source=str(path))
            for warning in warnings:
                print(f"repro perf: {warning}", file=sys.stderr)
            collected.extend(records)
        if not collected:
            print("repro perf: no schema-2 metrics found; nothing recorded")
            return 0
        count = append_records(ledger, collected)
        print(f"recorded {count} metric(s) into {ledger}")
        return 0

    records, skipped = load_ledger(ledger)
    if skipped:
        print(f"repro perf: skipped {skipped} malformed ledger line(s)",
              file=sys.stderr)
    rows = trends(
        records,
        min_history=args.min_history,
        mad_k=args.mad_k,
        rel_floor=args.rel_floor,
    )
    if not rows:
        print(f"perf ledger {ledger}: no trendable series")
        return 0

    table = [
        [
            t.bench, t.metric, t.n, t.direction,
            f"{t.center:.4g}", f"{t.last:.4g}",
            f"{t.delta_pct:+.1f}%" if t.center else "-",
            t.status,
        ]
        for t in rows
    ]
    print(f"perf ledger {ledger}")
    print(format_table(
        ["bench", "metric", "n", "dir", "median", "last", "delta", "status"], table
    ))

    if args.perf_command == "check":
        regressions = [t for t in rows if t.status == "regression"]
        for t in regressions:
            print(
                f"REGRESSION {t.bench}.{t.metric}: last={t.last:.4g} vs "
                f"median={t.center:.4g} ({t.delta_pct:+.1f}%, "
                f"allowed band ±{t.band:.4g}, {t.direction} is better)",
                file=sys.stderr,
            )
        if regressions:
            return 1
        print("perf check: no regressions")
    return 0


def report_command(args: argparse.Namespace) -> int:
    """Render tables from one JSONL export, or compare two."""
    from repro.obs.report import render_comparison, render_report
    from repro.obs.timeline import load_export

    try:
        exports = [load_export(path) for path in args.paths]
    except (OSError, ValueError) as exc:
        print(f"repro report: error: {exc}", file=sys.stderr)
        return 2
    if len(exports) == 1:
        print(render_report(exports[0]))
    else:
        print(render_comparison(exports[0], exports[1]))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Replicating Nondeterministic Services on "
        "Grid Environments' (HPDC 2006).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = sub.add_parser(
        "experiments", help="re-run every table/figure and print the report"
    )
    experiments.add_argument(
        "--quick", action="store_true", help="smaller sample counts (smoke run)"
    )
    experiments.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the run grid (default: 1, serial)",
    )

    sub.add_parser("profiles", help="list the calibrated deployment profiles")

    run = sub.add_parser(
        "run", help="one instrumented run; export its timeline with --export"
    )
    run.add_argument(
        "--profile", default="sysnet", choices=sorted(PROFILES),
        help="deployment profile (default: sysnet)",
    )
    run.add_argument(
        "--kind", default="write", choices=KINDS,
        help="request kind for every client (default: write)",
    )
    run.add_argument("--requests", type=int, default=100,
                     help="total requests across all clients (default: 100)")
    run.add_argument("--clients", type=int, default=1,
                     help="closed-loop client count (default: 1)")
    run.add_argument("--seed", type=int, default=0, help="simulation seed")
    run.add_argument("--groups", type=int, default=1,
                     help="replication groups per process (keyspace shards; "
                          ">1 switches to a keyed KV workload, default: 1)")
    run.add_argument("--fsync", default="async", choices=("sync", "group", "async"),
                     help="stable-storage durability mode: fsync per barrier, "
                          "group commit, or legacy write-through (default: async)")
    run.add_argument("--export", metavar="PATH",
                     help="write the JSONL timeline here (for 'repro report')")
    run.add_argument("--trace", action="store_true",
                     help="also record (and export) per-message trace events")
    run.add_argument("--tracing", action="store_true",
                     help="record causal request spans (exported with --export)")
    run.add_argument("--chrome", metavar="PATH",
                     help="write a Chrome trace-event JSON here (implies --tracing)")
    run.add_argument("--profiling", action="store_true",
                     help="record sim-CPU/host-time profiler frames "
                          "(exported with --export; counters with --chrome)")

    profile_parser = sub.add_parser(
        "profile",
        help="profile one run: hottest handlers, E/m/M attribution, flamegraph",
    )
    profile_parser.add_argument(
        "--profile", default="sysnet", choices=sorted(PROFILES),
        help="deployment profile (default: sysnet)",
    )
    profile_parser.add_argument(
        "--kind", default="write", choices=KINDS,
        help="request kind for every client (default: write)",
    )
    profile_parser.add_argument("--requests", type=int, default=100,
                                help="total requests across all clients "
                                     "(default: 100)")
    profile_parser.add_argument("--clients", type=int, default=1,
                                help="closed-loop client count (default: 1)")
    profile_parser.add_argument("--seed", type=int, default=0,
                                help="simulation seed")
    profile_parser.add_argument("--execute-time", type=float, default=0.0,
                                help="modeled execution time E in seconds "
                                     "(default: 0)")
    profile_parser.add_argument("--top", type=int, default=10,
                                help="hottest-handlers rows to print "
                                     "(default: 10)")
    profile_parser.add_argument("--out", metavar="PATH",
                                help="write collapsed flamegraph stacks here "
                                     "(flamegraph.pl / speedscope input)")
    profile_parser.add_argument("--metric", default="sim", choices=("sim", "host"),
                                help="collapsed-stack metric: simulated CPU ns "
                                     "or host wall ns (default: sim)")
    profile_parser.add_argument("--chrome", metavar="PATH",
                                help="write a Chrome trace-event JSON with "
                                     "counter tracks here")
    profile_parser.add_argument("--export", metavar="PATH",
                                help="write the JSONL timeline here "
                                     "(for 'repro report')")

    perf = sub.add_parser(
        "perf", help="perf-regression ledger: record results, trend, gate CI"
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    default_ledger = "benchmarks/results/perf-ledger.jsonl"
    perf_record = perf_sub.add_parser(
        "record", help="ingest BENCH_*.json metrics into the ledger"
    )
    perf_record.add_argument("paths", nargs="*", metavar="BENCH_JSON",
                             help="BENCH files to ingest (default: every "
                                  "BENCH_*.json under --results-dir)")
    perf_record.add_argument("--results-dir", default="benchmarks/results",
                             help="directory scanned when no paths are given")
    perf_record.add_argument("--ledger", default=default_ledger,
                             help=f"ledger JSONL path (default: {default_ledger})")
    for name, help_text in (
        ("trend", "print per-metric trends (median + MAD noise bands)"),
        ("check", "exit 1 if the latest value of any metric regressed"),
    ):
        p = perf_sub.add_parser(name, help=help_text)
        p.add_argument("--ledger", default=default_ledger,
                       help=f"ledger JSONL path (default: {default_ledger})")
        p.add_argument("--min-history", type=int, default=3,
                       help="samples needed before the latest one is judged "
                            "(default: 3)")
        p.add_argument("--mad-k", type=float, default=3.0,
                       help="noise-band width in scaled MADs (default: 3.0)")
        p.add_argument("--rel-floor", type=float, default=0.10,
                       help="minimum band as a fraction of the median "
                            "(default: 0.10)")

    trace = sub.add_parser(
        "trace",
        help="one traced run: per-request waterfalls + critical-path summary",
    )
    trace.add_argument(
        "--profile", default="sysnet", choices=sorted(PROFILES),
        help="deployment profile (default: sysnet)",
    )
    trace.add_argument(
        "--kind", default="write", choices=KINDS,
        help="request kind for every client (default: write)",
    )
    trace.add_argument("--requests", type=int, default=10,
                       help="total requests across all clients (default: 10)")
    trace.add_argument("--clients", type=int, default=1,
                       help="closed-loop client count (default: 1)")
    trace.add_argument("--seed", type=int, default=0, help="simulation seed")
    trace.add_argument("--show", type=int, default=3,
                       help="request waterfalls to print (default: 3)")
    trace.add_argument("--chrome", metavar="PATH",
                       help="write a Chrome trace-event JSON here")
    trace.add_argument("--export", metavar="PATH",
                       help="write the JSONL timeline here (for 'repro report')")

    report = sub.add_parser(
        "report", help="render tables from a JSONL export (two paths: compare)"
    )
    report.add_argument("paths", nargs="+", metavar="EXPORT",
                        help="one export to report on, or two to compare")

    chaos = sub.add_parser(
        "chaos",
        help="randomized fault schedules + invariant checks over many seeds",
    )
    chaos.add_argument("--seeds", type=int, default=20,
                       help="number of seeds to sweep (default: 20)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="first seed of the sweep (default: 0)")
    chaos.add_argument("--protocol", default="basic",
                       choices=("basic", "xpaxos", "tpaxos"),
                       help="protocol under test (default: basic)")
    chaos.add_argument("--replicas", type=int, default=3,
                       help="replica count (default: 3)")
    chaos.add_argument("--groups", type=int, default=1,
                       help="replication groups per process (keyspace "
                            "shards; invariants run per group, default: 1)")
    chaos.add_argument("--clients", type=int, default=2,
                       help="client count (default: 2)")
    chaos.add_argument("--requests", type=int, default=12,
                       help="requests per client (default: 12)")
    chaos.add_argument("--horizon", type=float, default=2.0,
                       help="fault-injection window, simulated seconds (default: 2)")
    chaos.add_argument("--intensity", type=float, default=1.0,
                       help="fault event rate multiplier (default: 1.0)")
    chaos.add_argument("--allow-majority-loss", action="store_true",
                       help="let crash bursts take down a majority")
    chaos.add_argument("--fsync", default="async",
                       choices=("sync", "group", "async"),
                       help="replica durability mode (default: async; "
                            "storage faults need sync or group)")
    chaos.add_argument("--storage-faults", action="store_true",
                       help="also sample storage nemeses (torn writes, lying "
                            "fsyncs, disk stalls, record rot); requires "
                            "--fsync sync|group")
    chaos.add_argument("--mutation", choices=("minority-accept", "skip-fsync"),
                       help="inject a deliberate protocol bug (validation runs)")
    chaos.add_argument("--shrink", action="store_true",
                       help="minimize each violating schedule to a small repro")
    chaos.add_argument("--shrink-budget", type=int, default=200,
                       help="max extra trials per shrink (default: 200)")
    chaos.add_argument("--tracing", action="store_true",
                       help="record causal spans; violations print waterfalls")
    chaos.add_argument("--summary", metavar="PATH",
                       help="write the machine-readable JSON summary here")
    chaos.add_argument("--quiet", action="store_true",
                       help="no per-seed progress lines on stderr")
    chaos.add_argument("--workers", type=int, default=1,
                       help="worker processes for the seed sweep (default: 1)")

    sweep = sub.add_parser(
        "sweep",
        help="shard a run grid across workers; deterministic merged JSON",
    )
    sweep.add_argument("--grid", required=True,
                       choices=("chaos", "figures", "calibration", "selftest"),
                       help="which run grid to execute")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (default: 1, serial)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-run wall-clock budget in seconds")
    sweep.add_argument("--retries", type=int, default=1,
                       help="retries after a worker death/timeout (default: 1)")
    sweep.add_argument("--out", metavar="PATH",
                       help="merged JSON path (default: "
                            "benchmarks/results/BENCH_sweep_<grid>.json)")
    sweep.add_argument("--no-timing", action="store_true",
                       help="omit the host-dependent timing section")
    sweep.add_argument("--seeds", type=int, default=20,
                       help="[chaos/selftest grid] run count (default: 20)")
    sweep.add_argument("--seed", type=int, default=0,
                       help="[chaos grid] first seed (default: 0)")
    sweep.add_argument("--protocols", default="basic",
                       help="[chaos grid] comma-separated protocols "
                            "(default: basic)")
    sweep.add_argument("--quick", action="store_true",
                       help="[figures grid] smaller sample counts")
    sweep.add_argument("--samples", type=int, default=400,
                       help="[calibration grid] samples per run (default: 400)")
    sweep.add_argument("--ledger", metavar="PATH",
                       help="also append the sweep's wall time and ok-rate "
                            "to this perf ledger")

    add_lint_parser(sub)

    args = parser.parse_args(argv)
    if args.command == "experiments":
        print(build_experiments_report(quick=args.quick, workers=args.workers))
        return 0
    if args.command == "profiles":
        for name, factory in PROFILES.items():
            profile = factory()
            print(f"{name}: {profile.description}")
            for kind, value in profile.paper_rrt.items():
                print(f"    paper {kind} RRT: {value * 1e3:.3f} ms")
        return 0
    if args.command == "run":
        return run_command(args)
    if args.command == "trace":
        return trace_command(args)
    if args.command == "profile":
        return profile_command(args)
    if args.command == "perf":
        return perf_command(args)
    if args.command == "report":
        if len(args.paths) > 2:
            parser.error("report takes one export, or two to compare")
        return report_command(args)
    if args.command == "chaos":
        return chaos_command(args)
    if args.command == "sweep":
        return sweep_command(args)
    if args.command == "lint":
        return lint_command(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
