"""Simulated stable-storage device: the bytes that survive a crash.

:class:`SimDisk` models the durability boundary and nothing else — all
timing (append latency, fsync latency, group-commit scheduling) lives in
:class:`repro.storage.store.StableStore`, which owns the device and calls
into it at the right simulated instants. Keeping the device pure state
makes crash semantics trivial to reason about: ``World.crash()`` destroys
the process object; the device object persists and is handed to the
reincarnated replica.

State model:

- ``durable``: frames that survived at least one completed, honest fsync
  (or every frame immediately, in ``write_through`` mode — the legacy
  zero-latency semantics used by ``--fsync=async``).
- ``cache``: appended but not yet synced frames. Lost at crash, except a
  torn tail (see below).
- a durable :class:`CheckpointBlob` plus possibly a pending one riding
  the next fsync. Installing a checkpoint truncates the WAL: accept and
  choose records at or below the checkpoint instance are dropped; the
  latest promise/round records are retained (they are not covered by the
  snapshot).

Frames carry a monotonically increasing sequence number. An fsync begun
at sequence ``s`` covers exactly the frames with ``seq <= s`` — frames
appended while the fsync is in flight wait for the next one. A *lying*
fsync (the ``lost_fsync`` nemesis) marks covered frames acked without
moving them to durable; if such a frame is still undurable at crash time
the device is **poisoned**: the replica acknowledged clients on the
strength of writes that never hit the platter, and replay refuses to
resurrect it (fail-stop — rejoining with promise/accept amnesia would be
Byzantine from the protocol's point of view).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.storage.wal import WalRecord, decode_frames, encode_frame


@dataclass(slots=True)
class CheckpointBlob:
    """Atomic checkpoint unit: snapshot state + the rids it folds in.

    Carrying the service/executed snapshots *inside* the blob is what
    makes checkpoint install crash-atomic: there is no ordering hazard
    between a WAL marker and a separate state file, because there is no
    separate state file. ``group`` names the replication group the blob
    belongs to when several groups share the device.
    """

    instance: int
    service_snap: Any
    executed_snap: dict[str, Any]
    rids: frozenset[str]
    seq: int
    group: int = 0


@dataclass(slots=True)
class Frame:
    seq: int
    record: WalRecord
    acked: bool = False
    status: str = "ok"  # "ok" | "torn" | "corrupt"

    def encode(self) -> bytes:
        return encode_frame(self.record)


@dataclass
class ReplayResult:
    checkpoints: dict[int, CheckpointBlob]
    records: list[WalRecord]
    truncated: int  # torn-tail frames dropped
    status: str  # "ok" | "poisoned" | "corrupt"

    @property
    def checkpoint(self) -> CheckpointBlob | None:
        """The single-group view: group 0's checkpoint (or None)."""
        return self.checkpoints.get(0)


@dataclass
class SimDisk:
    """Pure durable state; survives :meth:`crash` by design.

    Checkpoints are keyed by replication group: a sharded process stores
    every hosted group's blobs on the one device. Single-group code sees
    the same surface as before through the ``checkpoint`` /
    ``pending_checkpoint`` properties (group 0).
    """

    write_through: bool = False
    durable: list[Frame] = field(default_factory=list)
    cache: list[Frame] = field(default_factory=list)
    checkpoints: dict[int, CheckpointBlob] = field(default_factory=dict)
    pending_checkpoints: dict[int, CheckpointBlob] = field(default_factory=dict)
    poisoned: bool = False
    torn_armed: bool = False
    _seq: int = 0
    appends: int = 0
    fsyncs: int = 0
    crashes: int = 0

    @property
    def checkpoint(self) -> CheckpointBlob | None:
        return self.checkpoints.get(0)

    @property
    def pending_checkpoint(self) -> CheckpointBlob | None:
        return self.pending_checkpoints.get(0)

    # -- appends ----------------------------------------------------------

    def append(self, record: WalRecord) -> int:
        """Append a record; returns its sequence number."""
        self._seq += 1
        self.appends += 1
        frame = Frame(self._seq, record)
        if self.write_through:
            frame.acked = True
            self.durable.append(frame)
        else:
            self.cache.append(frame)
        return self._seq

    def stage_checkpoint(self, blob: CheckpointBlob) -> None:
        """Stage a checkpoint to be installed by the next completed fsync.

        In ``write_through`` mode the install is immediate, matching the
        zero-latency durability of that mode.
        """
        if self.write_through:
            self._install_checkpoint(blob)
        else:
            self.pending_checkpoints[blob.group] = blob

    @property
    def last_seq(self) -> int:
        return self._seq

    @property
    def unsynced(self) -> int:
        return len(self.cache)

    # -- fsync ------------------------------------------------------------

    def complete_fsync(self, upto_seq: int, lie: bool = False) -> int:
        """Persist (or, when lying, merely ack) frames with seq <= upto_seq.

        Returns the number of frames covered. An honest fsync also
        installs a staged checkpoint whose seq is covered, then truncates
        the WAL against the installed checkpoint.
        """
        self.fsyncs += 1
        covered = [f for f in self.cache if f.seq <= upto_seq]
        for frame in covered:
            frame.acked = True
        if lie:
            return len(covered)
        self.cache = [f for f in self.cache if f.seq > upto_seq]
        self.durable.extend(covered)
        for group in sorted(self.pending_checkpoints):
            pending = self.pending_checkpoints[group]
            if pending.seq <= upto_seq:
                del self.pending_checkpoints[group]
                self._install_checkpoint(pending)
        return len(covered)

    def _install_checkpoint(self, blob: CheckpointBlob) -> None:
        self.checkpoints[blob.group] = blob
        # WAL truncation: each group's snapshot subsumes that group's
        # accepts/chooses at or below its instance. Keep only the latest
        # promise and round records per group — earlier ones are
        # superseded, and Paxos only needs the maximum.
        kept: list[Frame] = []
        last_promise: dict[int, Frame] = {}
        last_round: dict[int, Frame] = {}
        for frame in self.durable:
            record = frame.record
            kind = record.kind
            if kind == "promise":
                last_promise[record.group] = frame
            elif kind == "round":
                last_round[record.group] = frame
            else:
                # accept payloads lead with a ProposalNumber, choose
                # payloads with a bare instance id.
                head = record.payload[0]
                instance = head.instance if kind == "accept" else head
                covering = self.checkpoints.get(record.group)
                if covering is None or instance > covering.instance:
                    kept.append(frame)
        head = list(last_promise.values()) + list(last_round.values())
        head.sort(key=lambda f: f.seq)
        self.durable = head + kept

    # -- crash ------------------------------------------------------------

    def crash(self) -> None:
        """Apply power-loss semantics: drop the cache, honour armed faults.

        A pending (never-synced) checkpoint is lost. An armed torn write
        lands the *first* cached frame on the platter marked torn — the
        write that was in flight when power died. Any frame or checkpoint
        that was fsync-acked but never persisted (a lying fsync) poisons
        the device.
        """
        self.crashes += 1
        if any(f.acked for f in self.cache):
            self.poisoned = True
        # Losing staged-but-unsynced checkpoints is the normal crash
        # contract; a *lied-about* one poisons via its covered frames.
        self.pending_checkpoints = {}
        if self.torn_armed and self.cache:
            torn = self.cache[0]
            torn.status = "torn"
            self.durable.append(torn)
        self.torn_armed = False
        self.cache = []

    # -- fault injection --------------------------------------------------

    def arm_torn_write(self) -> None:
        self.torn_armed = True

    def corrupt_record(self, fraction: float) -> bool:
        """Flip a bit of the durable frame at ``fraction`` of the log.

        Never rots the tail frame: a corrupt tail is indistinguishable
        from a torn write, so replay would silently truncate it — and with
        it a record that may have been fsync-acked, which is amnesia, not
        the deterministic mid-log fail-stop this nemesis probes. Returns
        ``False`` when the log is too short to have a non-tail frame.
        """
        if len(self.durable) < 2:
            return False
        index = min(
            len(self.durable) - 2, int(fraction * (len(self.durable) - 1))
        )
        self.durable[index].status = "corrupt"
        return True

    @property
    def intact(self) -> bool:
        return not self.poisoned and all(f.status == "ok" for f in self.durable)

    # -- replay -----------------------------------------------------------

    def replay(self) -> ReplayResult:
        """Decode the durable log for recovery.

        Byte-faithful: frames are re-encoded and run through the frame
        decoder, so torn-tail truncation exercises the same CRC check a
        real implementation would. A torn tail truncates; a corrupt
        record before the tail, or a poisoned device, is fail-stop.
        """
        if self.poisoned:
            return ReplayResult(dict(self.checkpoints), [], 0, "poisoned")
        records: list[WalRecord] = []
        truncated = 0
        for i, frame in enumerate(self.durable):
            if frame.status == "ok":
                records.append(frame.record)
                continue
            data = bytearray(frame.encode())
            data[len(data) // 2] ^= 0xFF
            decoded, _, _ = decode_frames(bytes(data))
            if decoded:  # pragma: no cover - bit flip always breaks the CRC
                records.extend(decoded)
                continue
            if frame.status == "torn" and i == len(self.durable) - 1:
                truncated = 1
                self.durable = self.durable[:i]
                return ReplayResult(dict(self.checkpoints), records, truncated, "ok")
            return ReplayResult(dict(self.checkpoints), [], 0, "corrupt")
        return ReplayResult(dict(self.checkpoints), records, truncated, "ok")
