"""Deterministic simulated stable storage (WAL + checkpoints + fsync model).

See :mod:`repro.storage.store` for the replica-facing API and the crash/
replay contract, :mod:`repro.storage.device` for the durability state
machine, and :mod:`repro.storage.wal` for the CRC record framing.
"""

from repro.storage.device import CheckpointBlob, Frame, ReplayResult, SimDisk
from repro.storage.store import RecoveredState, StableStore, StoragePump
from repro.storage.wal import RECORD_KINDS, WalRecord, decode_frames, encode_frame

FSYNC_MODES = ("sync", "group", "async")

__all__ = [
    "FSYNC_MODES",
    "RECORD_KINDS",
    "CheckpointBlob",
    "Frame",
    "RecoveredState",
    "ReplayResult",
    "SimDisk",
    "StableStore",
    "StoragePump",
    "WalRecord",
    "decode_frames",
    "encode_frame",
]
