"""Write-ahead-log record framing for the simulated stable storage.

Every stable-state mutation a replica makes (accepted proposal, chosen
value, promised ballot, observed round) becomes one :class:`WalRecord`
appended to the device. On the wire — and on the simulated platter — a
record is a CRC-framed blob::

    <u32 length> <u32 crc32(body)> <body = pickle((kind, payload))>

Framing matters for exactly one reason: crash recovery. A torn tail (the
record being written when power died) decodes as a truncated or
CRC-mismatching final frame, which replay silently drops — a torn record
was by construction never fsync-acknowledged, so nothing acked is lost. A
CRC mismatch *before* the tail means the medium itself corrupted an
already-synced record; that is not recoverable by truncation and replay
refuses to proceed (see :meth:`repro.storage.device.SimDisk.replay`).

Records keep their payload as live object references and only materialize
bytes on demand (:func:`encode_frame`): the simulator's hot path appends
thousands of records per run and must not pay a pickle per accept. The
byte form exists for fault injection (flipping a real bit of a real frame)
and for the framing unit tests.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Any

#: Record kinds, in the order they were introduced. ``accept`` and
#: ``choose`` carry ``(pn_or_instance, Proposal)`` payloads; ``promise``
#: carries a Ballot; ``round`` an int.
RECORD_KINDS = ("accept", "choose", "promise", "round")

_HEADER = struct.Struct("<II")
HEADER_SIZE = _HEADER.size


@dataclass(slots=True)
class WalRecord:
    """One logical WAL record (payload held by reference, encoded lazily).

    ``group`` namespaces the record when several replication groups share
    one device (a sharded process writes every group's records into the
    same WAL); single-group stores leave it at 0.
    """

    kind: str
    payload: Any
    group: int = 0

    def encode_body(self) -> bytes:
        return pickle.dumps(
            (self.kind, self.payload, self.group), protocol=pickle.HIGHEST_PROTOCOL
        )


def encode_frame(record: WalRecord) -> bytes:
    """The on-disk byte form: length + crc32 header, then the body."""
    body = record.encode_body()
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def decode_frames(data: bytes) -> tuple[list[WalRecord], int, str]:
    """Decode frames from ``data``; returns ``(records, consumed, status)``.

    ``status`` is ``"ok"`` when the byte stream ends exactly on a frame
    boundary, ``"torn"`` when the final frame is truncated or fails its
    CRC (the classic torn tail — callers truncate at ``consumed``), and
    ``"corrupt"`` when a *non-final* frame fails its CRC, which means a
    synced record rotted and truncation would silently drop acked data.
    """
    records: list[WalRecord] = []
    offset = 0
    bad_at: int | None = None
    while offset < len(data):
        if offset + HEADER_SIZE > len(data):
            bad_at = offset
            break
        length, crc = _HEADER.unpack_from(data, offset)
        body = data[offset + HEADER_SIZE : offset + HEADER_SIZE + length]
        if len(body) < length or zlib.crc32(body) != crc:
            bad_at = offset
            break
        decoded = pickle.loads(body)
        kind, payload = decoded[0], decoded[1]
        group = decoded[2] if len(decoded) > 2 else 0
        records.append(WalRecord(kind, payload, group))
        offset += HEADER_SIZE + length
    if bad_at is None:
        return records, offset, "ok"
    # A bad frame is a torn tail only if nothing decodable follows it.
    remainder = data[bad_at + 1 :]
    for probe in range(len(remainder) - HEADER_SIZE):
        length, crc = _HEADER.unpack_from(remainder, probe)
        body = remainder[probe + HEADER_SIZE : probe + HEADER_SIZE + length]
        if len(body) == length and length > 0 and zlib.crc32(body) == crc:
            return records, offset, "corrupt"
    return records, offset, "torn"
