"""The replica-facing stable-storage API.

:class:`StableStore` is the single gateway for every stable-state
mutation a replica makes (lint rule ``PROTO002`` enforces this): accepted
proposals, chosen values, the promised ballot, the highest observed
round, checkpoints, and snapshot installs. It owns the volatile
:class:`repro.core.log.ReplicaLog` (the working view) for one replication
group, and writes through a :class:`StoragePump` — the per-*process*
durability substrate: one :class:`repro.storage.device.SimDisk`, one
fsync pump, one crash/replay cycle. A standalone replica creates its own
pump; a sharded process (:class:`repro.shard.host.GroupHost`) hands every
hosted group's store the same pump, so all groups share one WAL, one
group-commit clock, and one crash.

Three fsync modes (``ReplicaConfig.fsync_mode``):

* ``async`` — the legacy semantics: appends are durable immediately and
  :meth:`flush` invokes its callback inline. Zero extra events, zero
  extra latency; runs are byte-identical to the pre-storage simulator.
* ``sync`` — a durability barrier starts an fsync at once; background
  appends (e.g. Chosen records) drain on the group-commit interval.
* ``group`` — barriers and background appends both wait for the
  group-commit timer, amortizing one modeled fsync over a batch.

Durability barriers: protocol code calls ``flush(callback)`` before any
externally visible promise of durability (sending a Promise, sending an
AcceptedBatch, counting the leader's own acceptance toward a quorum).
The callback fires once every record appended so far is durable, in its
caller's trace context. Only one fsync is in flight at a time; an fsync
begun at append-sequence *s* covers exactly the records with seq <= s.
The sequence numbers are device-wide, so one fsync settles barriers of
every group sharing the pump.

Crash/restart: :meth:`StoragePump.crash` drops in-flight fsyncs and
waiters (the device applies power-loss semantics itself) and is
idempotent until the next recovery, so each group's ``on_crash`` may
safely delegate to it. :meth:`StableStore.recover` replays the durable
checkpoint + WAL tail into a fresh log; the device replay happens once
per process restart (cached on the pump) and each group consumes its own
records and checkpoint from it. It returns ``None`` when the device is
not trustworthy (a lying fsync poisoned it, or a synced record rotted) —
the replica must then **fail-stop** rather than rejoin: re-entering the
protocol after forgetting a promise or an acceptance is Byzantine, not
crash-faulty, and would let Paxos choose two values for one instance.
Because the device is shared, refusal halts every group on the process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.ballot import Ballot, ProposalNumber
from repro.core.log import ReplicaLog
from repro.core.messages import Proposal
from repro.storage.device import CheckpointBlob, ReplayResult, SimDisk
from repro.storage.wal import WalRecord
from repro.types import GroupId, InstanceId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.group import ReplicationGroup


@dataclass(frozen=True, slots=True)
class RecoveredState:
    """What replay rebuilt; the replica adopts these in ``on_recover``."""

    promised: Ballot
    max_round: int
    checkpoint: tuple[InstanceId, Any, dict[str, Any]]
    replayed_records: int
    truncated_tail: int


class StoragePump:
    """Per-process durable substrate: one device, one fsync pump.

    ``host`` is the world-registered process (the replica itself for a
    standalone store, the :class:`~repro.shard.host.GroupHost` for a
    sharded one): its timers die with the process epoch, its config sets
    the fsync mode and latencies, and its tracer/profiler account the
    modeled device time.
    """

    def __init__(self, host: Any) -> None:
        self.host = host
        config = host.config
        self.mode = config.fsync_mode
        self.write_through = self.mode == "async"
        self.device = SimDisk(write_through=self.write_through)
        #: Barrier callbacks: ``(target_seq, callback, trace_ctx)``.
        self._waiters: list[tuple[int, Any, Any]] = []
        #: Append seq covered by the in-flight fsync (None = none running).
        self._fsync_covered: int | None = None
        self._fsync_lie = False
        self._group_timer: Any = None
        #: Storage-nemesis windows (virtual-time horizons).
        self._lie_until = -1.0
        self._stall_until = -1.0
        self._stall_extra = 0.0
        #: True once replay refused the device; every group stays down.
        self.halted = False
        self._crashed = False
        self._replay: ReplayResult | None = None

    # ---------------------------------------------------------------- flushing
    @property
    def needs_barrier(self) -> bool:
        """Whether durability requires waiting (False in ``async`` mode)."""
        return not self.write_through

    def flush(self, callback: Any) -> None:
        """Invoke ``callback`` once everything appended so far is durable."""
        if self.write_through:
            callback()
            return
        device = self.device
        if (
            self._fsync_covered is None
            and device.unsynced == 0
            and not device.pending_checkpoints
        ):
            callback()
            return
        self._waiters.append((device.last_seq, callback, self.host.tracer.current))
        if self.mode == "sync":
            self._start_fsync()
        else:
            self.ensure_drain()

    def ensure_drain(self) -> None:
        """Arm the group-commit timer unless a drain is already underway."""
        if self._fsync_covered is not None or self._group_timer is not None:
            return
        host = self.host
        # Background durability is not part of any request's causal chain.
        token = host.tracer.activate(None)
        try:
            self._group_timer = host.set_timer(
                host.config.group_commit_interval, self._drain_tick
            )
        finally:
            host.tracer.restore(token)

    def _drain_tick(self) -> None:
        self._group_timer = None
        self._start_fsync()

    def _start_fsync(self) -> None:
        if self.halted or self._fsync_covered is not None:
            return
        device = self.device
        if device.unsynced == 0 and not device.pending_checkpoints:
            self._fire_waiters(device.last_seq)
            return
        if self._group_timer is not None:
            self._group_timer.cancel()
            self._group_timer = None
        host = self.host
        now = host.now
        self._fsync_covered = device.last_seq
        self._fsync_lie = now < self._lie_until
        latency = host.config.fsync_latency
        if now < self._stall_until:
            latency += self._stall_extra
        profiler = host.profiler
        if profiler.enabled:
            # Modeled device time, accounted like the leader's modeled E.
            profiler.stat((str(host.pid), "fsync")).add_cpu(latency)
        token = host.tracer.activate(None)
        try:
            host.set_timer(latency, self._fsync_done)
        finally:
            host.tracer.restore(token)

    def _fsync_done(self) -> None:
        covered = self._fsync_covered
        if covered is None:  # pragma: no cover - timers die with the epoch
            return
        lie = self._fsync_lie
        self._fsync_covered = None
        self._fsync_lie = False
        device = self.device
        device.complete_fsync(covered, lie=lie)
        host = self.host
        if host.metrics.enabled:
            host.metrics.counter("storage.fsyncs").inc()
            if lie:
                host.metrics.counter("storage.fsyncs_lost").inc()
        self._fire_waiters(covered)
        if self._waiters:
            self._start_fsync()
        elif device.unsynced or device.pending_checkpoints:
            if self.mode == "sync":
                self._start_fsync()
            else:
                self.ensure_drain()

    def _fire_waiters(self, covered: int) -> None:
        if not self._waiters:
            return
        ready = [w for w in self._waiters if w[0] <= covered]
        if not ready:
            return
        self._waiters = [w for w in self._waiters if w[0] > covered]
        tracer = self.host.tracer
        for _seq, callback, ctx in ready:
            token = tracer.activate_for(ctx)
            try:
                callback()
            finally:
                tracer.restore(token)

    # ------------------------------------------------------------ crash/replay
    def crash(self) -> None:
        """Power loss: the device keeps only what was honestly synced.

        Idempotent until the next replay — every group hosted on the
        process delegates here from ``on_crash``, but the device must
        apply power-loss semantics exactly once per crash.
        """
        if self._crashed:
            return
        self._crashed = True
        self._replay = None
        self.device.crash()
        self._waiters = []
        self._fsync_covered = None
        self._fsync_lie = False
        self._group_timer = None  # the epoch bump killed the real timer

    def replay_once(self) -> ReplayResult:
        """Replay the device once per restart; every group shares the result."""
        if self._replay is None:
            self._replay = self.device.replay()
            self._crashed = False
            if self._replay.status != "ok":
                self.halted = True
        return self._replay

    # --------------------------------------------------------- fault injection
    def inject_torn_write(self) -> None:
        self.device.arm_torn_write()

    def inject_lost_fsync(self, duration: float) -> None:
        self._lie_until = self.host.now + duration

    def inject_disk_stall(self, duration: float, extra: float) -> None:
        self._stall_until = self.host.now + duration
        self._stall_extra = extra

    def inject_corruption(self, fraction: float) -> bool:
        return self.device.corrupt_record(fraction)

    @property
    def intact(self) -> bool:
        """No lying fsync ever bit and no synced record rotted."""
        return not self.halted and self.device.intact


class StableStore:
    """Stable storage for one replication group: WAL view + checkpoints.

    ``pump`` is the per-process substrate; omit it for a standalone
    replica (the store then creates and owns its own). ``group``
    namespaces this store's WAL records and checkpoints on the shared
    device.
    """

    def __init__(
        self,
        host: "ReplicationGroup",
        pump: StoragePump | None = None,
        group: GroupId = 0,
    ) -> None:
        self.host = host
        self.group = group
        self.pump = pump if pump is not None else StoragePump(host)
        self.mode = self.pump.mode
        self.write_through = self.pump.write_through
        self.log = ReplicaLog()
        #: The latest checkpoint as the replica sees it (may be ahead of
        #: the durable one while its fsync is in flight).
        self._checkpoint: tuple[InstanceId, Any, dict[str, Any]] = (0, None, {})
        #: Cumulative rids of every chosen request covered by the current
        #: checkpoint (only maintained with ``track_commits``).
        self._checkpoint_rids: frozenset[str] = frozenset()

    @property
    def device(self) -> SimDisk:
        return self.pump.device

    @property
    def halted(self) -> bool:
        return self.pump.halted

    def initialize(self, service_snap: Any) -> None:
        """Record the genesis checkpoint (instance 0, fresh service)."""
        self._checkpoint = (0, service_snap, {})

    # -------------------------------------------------------------- mutations
    def accept(self, pn: ProposalNumber, value: Proposal) -> None:
        self.log.accept(pn, value)
        self._append(WalRecord("accept", (pn, value), self.group))

    def choose(self, instance: InstanceId, value: Proposal) -> None:
        self.log.choose(instance, value)
        self._append(WalRecord("choose", (instance, value), self.group))

    def record_promise(self, ballot: Ballot) -> None:
        self._append(WalRecord("promise", ballot, self.group))

    def record_round(self, round_: int) -> None:
        self._append(WalRecord("round", round_, self.group))

    def _append(self, record: WalRecord) -> None:
        host = self.host
        profiler = host.profiler
        if profiler.enabled:
            profiler.enter("append")
        try:
            self.pump.device.append(record)
        finally:
            if profiler.enabled:
                profiler.exit()
        if host.metrics.enabled:
            host.metrics.counter("storage.appends").inc()
        if not self.write_through:
            self.pump.ensure_drain()

    # ------------------------------------------------------------ checkpoints
    @property
    def checkpoint(self) -> tuple[InstanceId, Any, dict[str, Any]]:
        return self._checkpoint

    @property
    def checkpoint_rids(self) -> frozenset[str]:
        return self._checkpoint_rids

    def write_checkpoint(self, instance: InstanceId) -> None:
        """Snapshot the host's state at ``instance`` and compact the log.

        The volatile log compacts immediately; the durable WAL keeps its
        records until the checkpoint blob itself is fsynced (the device
        truncates atomically at install), so a crash in between replays
        from the *previous* durable checkpoint without data loss.
        """
        host = self.host
        rids = self.rid_fold(instance)
        snap = (instance, host.service.snapshot(), host.executed.snapshot())
        self._checkpoint = snap
        self._checkpoint_rids = rids
        blob = CheckpointBlob(
            instance, snap[1], snap[2], rids, self.device.last_seq, self.group
        )
        self.log.compact(min(instance, self.log.frontier))
        self.device.stage_checkpoint(blob)
        if not self.write_through:
            self.pump.ensure_drain()
        if host.metrics.enabled:
            host.metrics.counter("storage.checkpoints").inc()

    def install_state(
        self,
        instance: InstanceId,
        service_snap: Any,
        executed_snap: dict[str, Any],
        rids: frozenset[str] = frozenset(),
    ) -> None:
        """Adopt a transferred snapshot at ``instance`` as a checkpoint.

        Same durability contract as :meth:`write_checkpoint`. ``rids`` is
        the sender's cumulative chosen-request fold (empty when the peer
        does not track commits); our own fold stays valid — everything it
        covers is chosen at or below ``instance`` too.
        """
        self.log.install_prefix(instance)
        if self.host.config.track_commits:
            self._checkpoint_rids = self._checkpoint_rids | rids
        snap = (instance, service_snap, dict(executed_snap))
        self._checkpoint = snap
        blob = CheckpointBlob(
            instance,
            service_snap,
            snap[2],
            self._checkpoint_rids,
            self.device.last_seq,
            self.group,
        )
        self.device.stage_checkpoint(blob)
        if not self.write_through:
            self.pump.ensure_drain()

    def rid_fold(self, instance: InstanceId) -> frozenset[str]:
        """Rids of every chosen request at or below ``instance``: the
        current checkpoint's fold plus retained chosen entries."""
        if not self.host.config.track_commits:
            return frozenset()
        rids = set(self._checkpoint_rids)
        for inst, value in self.log.chosen_items():
            if inst <= instance:
                for request in value.requests:
                    rids.add(str(request.rid))
        return frozenset(rids)

    # ---------------------------------------------------------------- flushing
    @property
    def needs_barrier(self) -> bool:
        """Whether durability requires waiting (False in ``async`` mode)."""
        return self.pump.needs_barrier

    def flush(self, callback: Any) -> None:
        """Invoke ``callback`` once everything appended so far is durable."""
        self.pump.flush(callback)

    # ------------------------------------------------------------ crash/replay
    def crash(self) -> None:
        """Power loss: the device keeps only what was honestly synced."""
        self.pump.crash()

    def recover(self) -> RecoveredState | None:
        """Replay checkpoint + WAL tail; ``None`` means fail-stop."""
        host = self.host
        profiler = host.profiler
        if profiler.enabled:
            profiler.enter("replay")
        try:
            state = self._recover_inner()
        finally:
            if profiler.enabled:
                profiler.exit()
        if host.metrics.enabled:
            if state is None:
                host.metrics.counter("storage.halts").inc()
            else:
                host.metrics.counter("storage.replays").inc()
                if state.truncated_tail:
                    host.metrics.counter("storage.torn_tails").inc()
        return state

    def _recover_inner(self) -> RecoveredState | None:
        result = self.pump.replay_once()
        if result.status != "ok":
            return None
        log = ReplicaLog()
        blob = result.checkpoints.get(self.group)
        if blob is not None:
            log.install_prefix(blob.instance)
            checkpoint = (blob.instance, blob.service_snap, dict(blob.executed_snap))
            rids = blob.rids
            base = blob.instance
        else:
            checkpoint = (0, self.host.service_factory().snapshot(), {})
            rids = frozenset()
            base = 0
        promised = Ballot.ZERO
        max_round = -1
        replayed = 0
        for record in result.records:
            if record.group != self.group:
                continue
            replayed += 1
            kind = record.kind
            if kind == "accept":
                pn, value = record.payload
                if pn.instance > base:
                    log.accept(pn, value)
            elif kind == "choose":
                instance, value = record.payload
                if instance > base and not log.is_chosen(instance):
                    log.choose(instance, value)
            elif kind == "promise":
                if record.payload > promised:
                    promised = record.payload
            elif record.payload > max_round:
                max_round = record.payload
        self.log = log
        self._checkpoint = checkpoint
        self._checkpoint_rids = rids if self.host.config.track_commits else frozenset()
        return RecoveredState(
            promised=promised,
            max_round=max_round,
            checkpoint=checkpoint,
            replayed_records=replayed,
            truncated_tail=result.truncated,
        )

    # -------------------------------------------------------------- inspection
    @property
    def intact(self) -> bool:
        """No lying fsync ever bit and no synced record rotted."""
        return self.pump.intact

    def durable_rids(self) -> frozenset[str]:
        """Rids of this group's client requests provably on the platter
        *right now*.

        Read-only (unlike :meth:`recover`, this never truncates): walks
        the durable frames the way replay would, unioned with the durable
        checkpoint's fold. Used by the acked-durability invariant — an
        acked write must appear in a majority-intact cluster's union.
        """
        device = self.device
        if device.poisoned:
            return frozenset()
        rids: set[str] = set()
        blob = device.checkpoints.get(self.group)
        if blob is not None:
            rids.update(blob.rids)
        frames = device.durable
        for i, frame in enumerate(frames):
            if frame.status != "ok":
                if frame.status == "torn" and i == len(frames) - 1:
                    break  # replay would truncate here
                return frozenset()  # replay would refuse this device
            record = frame.record
            if record.group != self.group:
                continue
            if record.kind in ("accept", "choose"):
                for request in record.payload[1].requests:
                    rids.add(str(request.rid))
        return frozenset(rids)

    # --------------------------------------------------------- fault injection
    def inject_torn_write(self) -> None:
        self.pump.inject_torn_write()

    def inject_lost_fsync(self, duration: float) -> None:
        self.pump.inject_lost_fsync(duration)

    def inject_disk_stall(self, duration: float, extra: float) -> None:
        self.pump.inject_disk_stall(duration, extra)

    def inject_corruption(self, fraction: float) -> bool:
        return self.pump.inject_corruption(fraction)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StableStore {self.host.pid}/g{self.group} mode={self.mode} "
            f"durable={len(self.device.durable)} unsynced={self.device.unsynced} "
            f"ckpt={self._checkpoint[0]}>"
        )
