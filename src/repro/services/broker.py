"""The distributed grid resource broker service (§2, first example).

"A common way to perform such selections is to use a randomized algorithm
to balance the load between resources." We implement the classic
*power-of-two-choices* randomized balancer (Mitzenmacher [23], cited by the
paper): pick two resources uniformly at random, assign the task to the less
loaded one. Replicas running this independently would diverge — exactly
the nondeterminism the paper's protocol exists to handle. REPRO-mode
transfer ships only the chosen resource name.

Operations:

* ``("add_resource", name, capacity)`` — write; register a resource.
* ``("request", task_id, demand)`` — nondeterministic write; pick a
  resource for the task, add ``demand`` to its load; returns the resource
  name or None if nothing fits.
* ``("release", task_id)`` — write; return the task's demand to the pool.
* ``("load", name)`` — read; a resource's current load.
* ``("placements",)`` — read; mapping of task -> resource.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ServiceError
from repro.services.base import ExecutionContext, ExecutionResult, Service


class ResourceBrokerService(Service):
    """Randomized resource broker with power-of-two-choices placement."""

    name = "broker"

    def __init__(self) -> None:
        #: resource name -> (capacity, load)
        self.resources: dict[str, list[float]] = {}
        #: task id -> (resource, demand)
        self.placements: dict[str, tuple[str, float]] = {}

    # ------------------------------------------------------------- execution
    def execute(self, op: Any, ctx: ExecutionContext) -> ExecutionResult:
        kind = op[0]
        if kind == "load":
            entry = self.resources.get(op[1])
            return ExecutionResult(reply=None if entry is None else entry[1])
        if kind == "placements":
            return ExecutionResult(reply=dict(self.placements))
        if kind == "add_resource":
            _, name, capacity = op
            if name in self.resources:
                raise ServiceError(f"resource {name!r} already registered")
            self.resources[name] = [float(capacity), 0.0]
            return ExecutionResult(
                reply=name,
                delta=("add_resource", name, capacity),
                repro=name,
                undo=lambda: self.resources.pop(name, None),
            )
        if kind == "request":
            _, task_id, demand = op
            if task_id in self.placements:
                raise ServiceError(f"task {task_id!r} already placed")
            choice = self._pick(float(demand), ctx)
            if choice is None:
                return ExecutionResult(reply=None, repro=None)
            self._place(task_id, choice, float(demand))
            return ExecutionResult(
                reply=choice,
                delta=("place", task_id, choice, demand),
                repro=choice,
                undo=lambda: self._unplace(task_id),
            )
        if kind == "release":
            _, task_id = op
            placement = self.placements.get(task_id)
            if placement is None:
                return ExecutionResult(reply=False, repro=False)
            self._unplace(task_id)
            resource, demand = placement
            return ExecutionResult(
                reply=True,
                delta=("release", task_id),
                repro=True,
                undo=lambda: self._place(task_id, resource, demand),
            )
        raise ValueError(f"unknown broker op {op!r}")

    def _pick(self, demand: float, ctx: ExecutionContext) -> str | None:
        """Power-of-two-choices among resources with spare capacity."""
        eligible = [
            name
            for name, (capacity, load) in self.resources.items()
            if capacity - load >= demand
        ]
        if not eligible:
            return None
        if len(eligible) == 1:
            return eligible[0]
        first, second = ctx.rng.sample(eligible, 2)
        return first if self.resources[first][1] <= self.resources[second][1] else second

    def _place(self, task_id: str, resource: str, demand: float) -> None:
        self.resources[resource][1] += demand
        self.placements[task_id] = (resource, demand)

    def _unplace(self, task_id: str) -> None:
        placement = self.placements.pop(task_id, None)
        if placement is not None:
            resource, demand = placement
            self.resources[resource][1] -= demand

    # ----------------------------------------------------------- state moves
    def snapshot(self) -> Any:
        return (
            {name: list(entry) for name, entry in self.resources.items()},
            dict(self.placements),
        )

    def restore(self, snap: Any) -> None:
        resources, placements = snap
        self.resources = {name: list(entry) for name, entry in resources.items()}
        self.placements = dict(placements)

    def apply_delta(self, delta: Any) -> None:
        if delta is None:
            return
        kind = delta[0]
        if kind == "add_resource":
            self.resources[delta[1]] = [float(delta[2]), 0.0]
        elif kind == "place":
            _, task_id, resource, demand = delta
            self._place(task_id, resource, float(demand))
        elif kind == "release":
            self._unplace(delta[1])
        else:
            raise ValueError(f"unknown broker delta {delta!r}")

    def replay(self, op: Any, repro: Any) -> Any:
        """Re-execute with the leader's choice instead of a fresh random draw."""
        kind = op[0]
        if kind == "add_resource":
            self.resources[op[1]] = [float(op[2]), 0.0]
            return op[1]
        if kind == "request":
            if repro is None:
                return None
            self._place(op[1], repro, float(op[2]))
            return repro
        if kind == "release":
            if repro:
                self._unplace(op[1])
            return repro
        raise ValueError(f"cannot replay broker op {op!r}")

    def locks_for(self, op: Any) -> tuple[frozenset, frozenset]:
        kind = op[0]
        if kind in ("load",):
            return frozenset({op[1]}), frozenset()
        if kind == "placements":
            return frozenset({"__all__"}), frozenset()
        return frozenset(), frozenset({"__all__"})

    def state_fingerprint(self) -> Any:
        return (
            tuple(sorted((n, tuple(e)) for n, e in self.resources.items())),
            tuple(sorted(self.placements.items())),
        )
