"""A deterministic key-value store.

Used throughout the test suite: it is deterministic, so it is also
replicable by the Multi-Paxos baseline, which lets tests cross-check the
nondeterministic protocol against plain state-machine replication. It
supports all three state-transfer modes and transactions (per-key 2PL
with undo records).

Operations (tuples):

* ``("get", key)`` — read.
* ``("put", key, value)`` — write; returns the previous value.
* ``("delete", key)`` — write; returns the previous value.
* ``("cas", key, expected, new)`` — compare-and-swap; returns bool.
* ``("keys",)`` — read; returns the sorted key list.
"""

from __future__ import annotations

from typing import Any

from repro.services.base import ExecutionContext, ExecutionResult, Service

_MISSING = object()


class KVStoreService(Service):
    """Dictionary with protocol-friendly plumbing."""

    name = "kvstore"

    def __init__(self) -> None:
        self.data: dict[Any, Any] = {}

    # ------------------------------------------------------------- execution
    def execute(self, op: Any, ctx: ExecutionContext) -> ExecutionResult:
        kind = op[0]
        if kind == "get":
            return ExecutionResult(reply=self.data.get(op[1]))
        if kind == "keys":
            return ExecutionResult(reply=sorted(self.data, key=repr))
        if kind == "put":
            _, key, value = op
            previous = self.data.get(key, _MISSING)
            self.data[key] = value
            return ExecutionResult(
                reply=None if previous is _MISSING else previous,
                delta=("put", key, value),
                repro=None,
                undo=lambda: self._unput(key, previous),
            )
        if kind == "delete":
            _, key = op
            previous = self.data.pop(key, _MISSING)
            return ExecutionResult(
                reply=None if previous is _MISSING else previous,
                delta=("delete", key),
                repro=None,
                undo=lambda: self._unput(key, previous),
            )
        if kind == "cas":
            _, key, expected, new = op
            current = self.data.get(key)
            if current == expected:
                previous = self.data.get(key, _MISSING)
                self.data[key] = new
                return ExecutionResult(
                    reply=True,
                    delta=("put", key, new),
                    repro=True,
                    undo=lambda: self._unput(key, previous),
                )
            return ExecutionResult(reply=False, repro=False)
        raise ValueError(f"unknown kvstore op {op!r}")

    def _unput(self, key: Any, previous: Any) -> None:
        if previous is _MISSING:
            self.data.pop(key, None)
        else:
            self.data[key] = previous

    # ----------------------------------------------------------- state moves
    def snapshot(self) -> Any:
        return dict(self.data)

    def restore(self, snap: Any) -> None:
        self.data = dict(snap)

    def apply_delta(self, delta: Any) -> None:
        if delta is None:
            return
        kind = delta[0]
        if kind == "put":
            self.data[delta[1]] = delta[2]
        elif kind == "delete":
            self.data.pop(delta[1], None)
        else:
            raise ValueError(f"unknown kvstore delta {delta!r}")

    def replay(self, op: Any, repro: Any) -> Any:
        # The store is deterministic except for cas outcomes racing with
        # nothing (they cannot race: execution is sequential), so replay is
        # plain re-execution. ``repro`` carries the cas outcome for sanity.
        kind = op[0]
        if kind == "cas" and repro is False:
            return False
        result = self.execute(op, None)  # type: ignore[arg-type]
        return result.reply

    # ----------------------------------------------------------- transactions
    def locks_for(self, op: Any) -> tuple[frozenset, frozenset]:
        kind = op[0]
        if kind == "get":
            return frozenset({op[1]}), frozenset()
        if kind == "keys":
            return frozenset({"__all__"}), frozenset()
        if kind in ("put", "delete", "cas"):
            return frozenset(), frozenset({op[1]})
        raise ValueError(f"unknown kvstore op {op!r}")

    def state_fingerprint(self) -> Any:
        return tuple(sorted(self.data.items(), key=repr))
