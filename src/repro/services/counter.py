"""A counter with a deliberately nondeterministic increment.

The smallest possible demonstration of the paper's problem statement:
``("add_random", lo, hi)`` adds a uniformly random amount, so two replicas
executing the same request sequence diverge unless the protocol ships the
leader's outcome. REPRO-mode transfer sends just the drawn amount.

Operations:

* ``("get",)`` — read; returns the value.
* ``("add", n)`` — write; returns the new value.
* ``("add_random", lo, hi)`` — nondeterministic write; returns the new value.
"""

from __future__ import annotations

from typing import Any

from repro.services.base import ExecutionContext, ExecutionResult, Service


class CounterService(Service):
    """An integer with deterministic and nondeterministic increments."""

    name = "counter"

    def __init__(self) -> None:
        self.value = 0

    def execute(self, op: Any, ctx: ExecutionContext) -> ExecutionResult:
        kind = op[0]
        if kind == "get":
            return ExecutionResult(reply=self.value)
        if kind == "add":
            amount = op[1]
        elif kind == "add_random":
            amount = ctx.rng.randint(op[1], op[2])
        else:
            raise ValueError(f"unknown counter op {op!r}")
        self.value += amount
        new_value = self.value
        return ExecutionResult(
            reply=new_value,
            delta=amount,
            repro=amount,
            undo=lambda: self._sub(amount),
        )

    def _sub(self, amount: int) -> None:
        self.value -= amount

    def snapshot(self) -> Any:
        return self.value

    def restore(self, snap: Any) -> None:
        self.value = snap

    def apply_delta(self, delta: Any) -> None:
        self.value += delta

    def replay(self, op: Any, repro: Any) -> Any:
        """Re-execute with the leader's drawn amount instead of a fresh draw."""
        self.value += repro
        return self.value

    def locks_for(self, op: Any) -> tuple[frozenset, frozenset]:
        if op[0] == "get":
            return frozenset({"value"}), frozenset()
        return frozenset(), frozenset({"value"})

    def state_fingerprint(self) -> Any:
        return self.value
