"""Application services replicated by the protocols.

* :mod:`repro.services.base` — the :class:`Service` contract.
* :mod:`repro.services.noop` — the paper's empty-method benchmark service.
* :mod:`repro.services.kvstore` — a key-value store (deterministic).
* :mod:`repro.services.counter` — a counter with a nondeterministic jitter op.
* :mod:`repro.services.broker` — the randomized grid resource broker (§2).
* :mod:`repro.services.gridsched` — the FCFS-with-priority grid scheduler (§2).
* :mod:`repro.services.bank` — transactional accounts for T-Paxos examples.
"""

from repro.services.bank import BankService
from repro.services.base import ExecutionContext, ExecutionResult, Service
from repro.services.broker import ResourceBrokerService
from repro.services.counter import CounterService
from repro.services.gridsched import GridSchedulerService
from repro.services.kvstore import KVStoreService
from repro.services.noop import NoopService

__all__ = [
    "BankService",
    "ExecutionContext",
    "ExecutionResult",
    "Service",
    "ResourceBrokerService",
    "CounterService",
    "GridSchedulerService",
    "KVStoreService",
    "NoopService",
]
