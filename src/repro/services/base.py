"""The service contract: what an application must provide to be replicated.

The protocol never interprets operations — it hands them to the service and
ships the resulting state. A service that wants cheap state transfer
implements ``apply_delta`` (DELTA mode) and/or ``replay`` (REPRO mode);
``snapshot``/``restore`` (FULL mode) are mandatory because new-leader
recovery and replica catch-up always use full snapshots.

Nondeterminism enters exclusively through the :class:`ExecutionContext`:
``ctx.rng`` (random choices — the resource-broker example) and ``ctx.now``
(execution-time dependence — the grid-scheduler example). A service that
never touches the context is deterministic and could also be replicated by
plain Multi-Paxos (:mod:`repro.core.multipaxos`); the point of the paper is
that services which *do* touch it cannot.
"""

from __future__ import annotations

import abc
import random
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import ServiceError


@dataclass(frozen=True, slots=True)
class ExecutionContext:
    """Sources of nondeterminism available to a service operation."""

    rng: random.Random
    now: float
    #: Transaction id when executing inside a T-Paxos transaction, else None.
    txn: str | None = None


@dataclass(frozen=True, slots=True)
class ExecutionResult:
    """What executing one operation produced.

    * ``reply`` — the client-visible result.
    * ``delta`` — a state update for DELTA-mode transfer (None if the
      service does not support deltas or the op changed nothing).
    * ``repro`` — reproduction info for REPRO-mode transfer: enough for a
      backup to re-execute the op deterministically.
    * ``undo`` — optional inverse action for T-Paxos rollback. Services
      that support transactions must supply it for state-changing ops.
    """

    reply: Any = None
    delta: Any = None
    repro: Any = None
    undo: Callable[[], None] | None = None


class Service(abc.ABC):
    """Base class for replicated application services."""

    #: Human-readable service name (used in logs and reports).
    name: str = "service"

    # ------------------------------------------------------------- execution
    @abc.abstractmethod
    def execute(self, op: Any, ctx: ExecutionContext) -> ExecutionResult:
        """Execute one operation. Only the leader calls this."""

    # ---------------------------------------------------------- FULL transfer
    @abc.abstractmethod
    def snapshot(self) -> Any:
        """A deep, immutable-by-convention copy of the full service state."""

    @abc.abstractmethod
    def restore(self, snap: Any) -> None:
        """Replace the service state with ``snap``."""

    # --------------------------------------------------------- DELTA transfer
    def apply_delta(self, delta: Any) -> None:
        """Apply a state update produced by the leader. Optional."""
        raise ServiceError(f"{self.name} does not support DELTA state transfer")

    # --------------------------------------------------------- REPRO transfer
    def replay(self, op: Any, repro: Any) -> Any:
        """Re-execute ``op`` deterministically given reproduction info.

        Must leave the service in exactly the state the leader reached.
        Optional; returns the reply value.
        """
        raise ServiceError(f"{self.name} does not support REPRO state transfer")

    # ----------------------------------------------------------- transactions
    def locks_for(self, op: Any) -> tuple[frozenset, frozenset]:
        """``(read_keys, write_keys)`` the operation touches, for the strict
        2PL lock manager. The default — no keys — means the op conflicts
        with nothing; transactional services should override."""
        return frozenset(), frozenset()

    # ----------------------------------------------------------- introspection
    def state_fingerprint(self) -> Any:
        """A hashable digest of the current state, used by tests to check
        replica convergence. Defaults to the snapshot (must then be
        hashable or comparable)."""
        return self.snapshot()
