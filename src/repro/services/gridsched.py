"""The grid scheduling service (§2, second example — the NILE Global Planner).

Jobs are examined in First-Come-First-Serve order, overridden by priority.
The paper's point: "the service's behavior depends not only on the sequence
of requests received, but also on the processing speed of the machine" —
whether Job B (higher priority, arriving at t2) beats Job A (arriving at
t1 < t2) depends on *when* the scheduler examines the queue. We reproduce
that by time-stamping submissions with ``ctx.now`` and having ``dispatch``
choose among jobs that have arrived by ``ctx.now``: two replicas running
at different speeds (different ``now``) would pick different jobs, so the
decision must be replicated (REPRO mode ships the chosen job id).

Operations:

* ``("submit", job_id, priority)`` — write; enqueue a job (arrival = ctx.now).
* ``("dispatch",)`` — nondeterministic write; pick the next job: highest
  priority among jobs arrived by now, FCFS tie-break; returns the job id
  or None.
* ``("queue",)`` — read; pending job ids in examination order.
* ``("done",)`` — read; dispatched job ids in dispatch order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ServiceError
from repro.services.base import ExecutionContext, ExecutionResult, Service


@dataclass(frozen=True, slots=True)
class Job:
    """One submitted job."""

    job_id: str
    priority: int
    arrival: float
    seq: int  # submission order, the FCFS tie-breaker


class GridSchedulerService(Service):
    """FCFS-with-priority scheduler whose decisions depend on examination time."""

    name = "gridsched"

    def __init__(self) -> None:
        self.pending: dict[str, Job] = {}
        self.dispatched: list[str] = []
        self._seq = 0

    # ------------------------------------------------------------- execution
    def execute(self, op: Any, ctx: ExecutionContext) -> ExecutionResult:
        kind = op[0]
        if kind == "queue":
            return ExecutionResult(reply=[j.job_id for j in self._examination_order()])
        if kind == "done":
            return ExecutionResult(reply=list(self.dispatched))
        if kind == "submit":
            _, job_id, priority = op
            if job_id in self.pending or job_id in self.dispatched:
                raise ServiceError(f"job {job_id!r} already submitted")
            job = Job(job_id=job_id, priority=priority, arrival=ctx.now, seq=self._seq)
            self._seq += 1
            self.pending[job_id] = job
            return ExecutionResult(
                reply=job_id,
                delta=("submit", job_id, priority, job.arrival, job.seq),
                repro=(job.arrival, job.seq),
                undo=lambda: self._unsubmit(job_id),
            )
        if kind == "dispatch":
            choice = self._choose(ctx.now)
            if choice is None:
                return ExecutionResult(reply=None, repro=None)
            job = self.pending.pop(choice)
            self.dispatched.append(choice)
            return ExecutionResult(
                reply=choice,
                delta=("dispatch", choice),
                repro=choice,
                undo=lambda: self._undispatch(job),
            )
        raise ValueError(f"unknown gridsched op {op!r}")

    def _examination_order(self) -> list[Job]:
        """Jobs ordered by (priority desc, arrival, submission seq)."""
        return sorted(self.pending.values(), key=lambda j: (-j.priority, j.arrival, j.seq))

    def _choose(self, now: float) -> str | None:
        """The job the scheduler picks when it examines the queue at ``now``.

        Only jobs that have *arrived* by ``now`` are visible — this is the
        execution-time dependence of §2.
        """
        visible = [j for j in self._examination_order() if j.arrival <= now]
        return visible[0].job_id if visible else None

    def _unsubmit(self, job_id: str) -> None:
        self.pending.pop(job_id, None)
        self._seq -= 1

    def _undispatch(self, job: Job) -> None:
        self.dispatched.remove(job.job_id)
        self.pending[job.job_id] = job

    # ----------------------------------------------------------- state moves
    def snapshot(self) -> Any:
        return (dict(self.pending), list(self.dispatched), self._seq)

    def restore(self, snap: Any) -> None:
        pending, dispatched, seq = snap
        self.pending = dict(pending)
        self.dispatched = list(dispatched)
        self._seq = seq

    def apply_delta(self, delta: Any) -> None:
        if delta is None:
            return
        kind = delta[0]
        if kind == "submit":
            _, job_id, priority, arrival, seq = delta
            self.pending[job_id] = Job(job_id, priority, arrival, seq)
            self._seq = max(self._seq, seq + 1)
        elif kind == "dispatch":
            job_id = delta[1]
            self.pending.pop(job_id, None)
            self.dispatched.append(job_id)
        else:
            raise ValueError(f"unknown gridsched delta {delta!r}")

    def replay(self, op: Any, repro: Any) -> Any:
        """Re-execute with the leader's timestamps/choice (the paper's
        'send the state of its queue when it selects a new request')."""
        kind = op[0]
        if kind == "submit":
            arrival, seq = repro
            _, job_id, priority = op
            self.pending[job_id] = Job(job_id, priority, arrival, seq)
            self._seq = max(self._seq, seq + 1)
            return job_id
        if kind == "dispatch":
            if repro is None:
                return None
            self.pending.pop(repro, None)
            self.dispatched.append(repro)
            return repro
        raise ValueError(f"cannot replay gridsched op {op!r}")

    def locks_for(self, op: Any) -> tuple[frozenset, frozenset]:
        kind = op[0]
        if kind in ("queue", "done"):
            return frozenset({"__queue__"}), frozenset()
        return frozenset(), frozenset({"__queue__"})

    def state_fingerprint(self) -> Any:
        return (
            tuple(sorted(self.pending)),
            tuple(self.dispatched),
        )
