"""A transactional bank-accounts service, the T-Paxos showcase (§3.5).

Deterministic, but with multi-operation invariants (transfers must not be
torn), so it exercises the transaction path: per-account strict 2PL locks
and undo records for rollback.

Operations:

* ``("open", acct, balance)`` — write; create an account.
* ``("deposit", acct, amount)`` — write; returns the new balance.
* ``("withdraw", acct, amount)`` — write; returns the new balance, or
  ``None`` (no state change) when funds are insufficient.
* ``("balance", acct)`` — read.
* ``("total",)`` — read; the sum over all accounts (conservation checks).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ServiceError
from repro.services.base import ExecutionContext, ExecutionResult, Service


class BankService(Service):
    """Accounts with integer balances."""

    name = "bank"

    def __init__(self) -> None:
        self.accounts: dict[str, int] = {}

    def execute(self, op: Any, ctx: ExecutionContext) -> ExecutionResult:
        kind = op[0]
        if kind == "balance":
            return ExecutionResult(reply=self.accounts.get(op[1]))
        if kind == "total":
            return ExecutionResult(reply=sum(self.accounts.values()))
        if kind == "open":
            _, acct, balance = op
            if acct in self.accounts:
                raise ServiceError(f"account {acct!r} already exists")
            self.accounts[acct] = int(balance)
            return ExecutionResult(
                reply=balance,
                delta=("set", acct, balance),
                repro=balance,
                undo=lambda: self.accounts.pop(acct, None),
            )
        if kind == "deposit":
            _, acct, amount = op
            self._check(acct)
            self.accounts[acct] += int(amount)
            new_balance = self.accounts[acct]
            return ExecutionResult(
                reply=new_balance,
                delta=("set", acct, new_balance),
                repro=new_balance,
                undo=lambda: self._set(acct, new_balance - amount),
            )
        if kind == "withdraw":
            _, acct, amount = op
            self._check(acct)
            if self.accounts[acct] < amount:
                return ExecutionResult(reply=None, repro=None)
            self.accounts[acct] -= int(amount)
            new_balance = self.accounts[acct]
            return ExecutionResult(
                reply=new_balance,
                delta=("set", acct, new_balance),
                repro=new_balance,
                undo=lambda: self._set(acct, new_balance + amount),
            )
        raise ValueError(f"unknown bank op {op!r}")

    def _check(self, acct: str) -> None:
        if acct not in self.accounts:
            raise ServiceError(f"no such account {acct!r}")

    def _set(self, acct: str, balance: int) -> None:
        self.accounts[acct] = balance

    # ----------------------------------------------------------- state moves
    def snapshot(self) -> Any:
        return dict(self.accounts)

    def restore(self, snap: Any) -> None:
        self.accounts = dict(snap)

    def apply_delta(self, delta: Any) -> None:
        if delta is None:
            return
        if delta[0] == "set":
            self.accounts[delta[1]] = delta[2]
        else:
            raise ValueError(f"unknown bank delta {delta!r}")

    def replay(self, op: Any, repro: Any) -> Any:
        kind = op[0]
        if kind == "open":
            self.accounts[op[1]] = int(op[2])
            return repro
        if kind in ("deposit", "withdraw"):
            if repro is None:
                return None
            self.accounts[op[1]] = int(repro)
            return repro
        raise ValueError(f"cannot replay bank op {op!r}")

    def locks_for(self, op: Any) -> tuple[frozenset, frozenset]:
        kind = op[0]
        if kind == "balance":
            return frozenset({op[1]}), frozenset()
        if kind == "total":
            return frozenset({"__all__"}), frozenset()
        return frozenset(), frozenset({op[1]})

    def state_fingerprint(self) -> Any:
        return tuple(sorted(self.accounts.items()))
