"""The paper's benchmark service: every request invokes an empty method.

"All three kinds of requests invoke an empty method and do not trigger any
actual operation" (§4) — the point is to isolate replication overhead. We
keep a few bytes of state (a version counter) so that write requests have
*something* to ship, matching "the size of service state is small (a few
bytes) in our experiments".

Optionally the state can be padded to an arbitrary size
(``state_size`` bytes) for the state-transfer-overhead ablation the paper
defers to [30].
"""

from __future__ import annotations

from typing import Any

from repro.services.base import ExecutionContext, ExecutionResult, Service


class NoopService(Service):
    """Empty-method service with a version counter as its whole state."""

    name = "noop"

    def __init__(self, state_size: int = 0) -> None:
        self.version = 0
        self._padding = bytes(state_size)

    # ------------------------------------------------------------- execution
    def execute(self, op: Any, ctx: ExecutionContext) -> ExecutionResult:
        kind = op[0] if isinstance(op, tuple) else op
        if kind in ("read", "original", None):
            return ExecutionResult(reply=self.version)
        if kind == "write":
            self.version += 1
            version = self.version
            return ExecutionResult(
                reply=version,
                delta=version,
                repro=version,
                # Decrement (not set-back): commutative, so concurrent
                # transactions' rollbacks interleave safely.
                undo=self._decrement,
            )
        raise ValueError(f"unknown noop op {op!r}")

    def _decrement(self) -> None:
        self.version -= 1

    # ----------------------------------------------------------- state moves
    def snapshot(self) -> Any:
        return (self.version, self._padding)

    def restore(self, snap: Any) -> None:
        self.version, self._padding = snap

    def apply_delta(self, delta: Any) -> None:
        self.version = delta

    def replay(self, op: Any, repro: Any) -> Any:
        self.version = repro
        return repro

    def locks_for(self, op: Any) -> tuple[frozenset, frozenset]:
        # An empty method conflicts with nothing (§4: requests "do not
        # trigger any actual operation") — concurrent transactions must not
        # serialize on the token version counter.
        return frozenset(), frozenset()

    def state_fingerprint(self) -> Any:
        return self.version
