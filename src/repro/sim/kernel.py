"""The discrete-event simulation kernel: a virtual clock plus an event heap.

The kernel is deliberately minimal — it knows nothing about processes or
messages. Everything above it (network delivery, CPU completion, protocol
timers) is expressed as a scheduled callback. Events scheduled for the same
virtual time fire in schedule order (FIFO tie-breaking via a sequence
number), which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Callable
from typing import Any

from repro.errors import SimulationError
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.util.seq import SequenceGenerator


class EventHandle:
    """Handle for a scheduled event; allows cancellation.

    Cancellation is *lazy*: the event stays in the heap but is skipped when
    popped. This is the standard O(1)-cancel trick for simulation heaps.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.fn: Callable[..., None] | None = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        self.cancelled = True
        self.fn = None          # release references early
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Kernel:
    """Single-threaded deterministic event loop with a virtual clock.

    Time is in **seconds** (floats). The kernel is reproducible: the same
    seed and the same sequence of ``schedule`` calls yield the identical
    execution, which the protocol safety tests rely on.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        self._heap: list[EventHandle] = []
        self._seq = SequenceGenerator()
        self._seed = seed
        self._running = False
        self.events_processed = 0
        #: Observability sink (gauges updated at the end of each run());
        #: deliberately off the per-event hot path.
        self.metrics: MetricsRegistry = NULL_REGISTRY

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def seed(self) -> int:
        return self._seed

    def rng(self, name: str) -> random.Random:
        """A deterministic RNG stream derived from the kernel seed and ``name``.

        Distinct names give independent streams; the same (seed, name) pair
        always gives the same stream, no matter how many other streams exist.
        """
        return random.Random(f"{self._seed}/{name}")

    # ------------------------------------------------------------ scheduling
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        handle = EventHandle(time, self._seq.next(), fn, args)
        heapq.heappush(self._heap, handle)
        return handle

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Run the next pending event. Returns False if the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            fn, args = event.fn, event.args
            event.cancel()  # release references
            assert fn is not None
            fn(*args)
            self.events_processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired. Returns the number of events processed.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return even if the heap drained earlier — so back-to-back ``run``
        calls behave like contiguous wall-clock intervals.
        """
        if self._running:
            raise SimulationError("kernel.run() is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                if max_events is not None and processed >= max_events:
                    break
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        if self.metrics.enabled:
            self.metrics.gauge("kernel.events_processed").set(self.events_processed)
            self.metrics.gauge("kernel.vtime").set(self._now)
            self.metrics.gauge("kernel.heap_size").set(len(self._heap))
        return processed

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still in the heap."""
        return sum(1 for e in self._heap if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel now={self._now:.6f}s pending={self.pending}>"
