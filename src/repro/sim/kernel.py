"""The discrete-event simulation kernel: a virtual clock plus an event heap.

The kernel is deliberately minimal — it knows nothing about processes or
messages. Everything above it (network delivery, CPU completion, protocol
timers) is expressed as a scheduled callback. Events scheduled for the same
virtual time fire in schedule order (FIFO tie-breaking via a sequence
number), which keeps runs fully deterministic.

Hot-path notes (this module dominates large sweeps, so it is tuned):

* Heap entries are ``(time, seq, handle)`` tuples, so heap sifting compares
  at C speed — no Python ``__lt__`` per comparison. ``seq`` is unique,
  which both breaks ties FIFO and guarantees the handle itself is never
  compared.
* Cancellation is *slot-indexed*: every handle knows its kernel, so a
  cancel updates an O(1) live-event counter instead of the heap being
  re-scanned. ``pending`` is a subtraction, and when cancelled events
  outnumber live ones the heap is compacted **in place** (same list
  object, so ``run``'s local binding stays valid even when a callback
  triggers compaction mid-run).
* Internal fire-and-forget events (message deliveries — the bulk of all
  events) go through :meth:`post_at`, which recycles handles from a free
  list. After warm-up a steady-state simulation allocates no new handles
  (the perf tier pins this via :attr:`handles_created`).
* :meth:`run` inlines the pop loop — no per-event ``step()`` call, and
  heap/pool/counter lookups are bound once outside the loop.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from heapq import heapify, heappop, heappush
from typing import Any

from repro.errors import SimulationError
from repro.obs.prof.profiler import NULL_PROFILER, NullProfiler, SimProfiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.util.seq import SequenceGenerator

#: Compact the heap once this many cancelled events have accumulated *and*
#: they outnumber the live ones (see :meth:`Kernel._maybe_compact`).
_COMPACT_MIN_CANCELLED = 512


class EventHandle:
    """Handle for a scheduled event; allows cancellation.

    Cancellation is *lazy*: the event stays in the heap but is skipped when
    popped. This is the standard O(1)-cancel trick for simulation heaps —
    plus a per-kernel cancelled counter so ``pending`` never re-scans and
    dense cancellation triggers compaction.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "kernel", "pooled")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        kernel: "Kernel | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn: Callable[..., None] | None = fn
        self.args = args
        self.cancelled = False
        #: Owning kernel (None for handles created outside a kernel, e.g.
        #: in unit tests that exercise the handle directly).
        self.kernel = kernel
        #: True for internal pool-managed events (never exposed to callers).
        self.pooled = False

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None          # release references early
        self.args = ()
        kernel = self.kernel
        if kernel is not None:
            kernel._cancelled += 1
            kernel._maybe_compact()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Kernel:
    """Single-threaded deterministic event loop with a virtual clock.

    Time is in **seconds** (floats). The kernel is reproducible: the same
    seed and the same sequence of ``schedule`` calls yield the identical
    execution, which the protocol safety tests rely on.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        #: Heap of (time, seq, EventHandle) — tuple comparison stays in C.
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = SequenceGenerator()
        self._seed = seed
        self._running = False
        self.events_processed = 0
        #: Cancelled events still sitting in the heap (slot-index bookkeeping).
        self._cancelled = 0
        #: Free list of recycled internal event handles (see :meth:`post_at`).
        self._pool: list[EventHandle] = []
        #: Total EventHandle objects ever constructed — the perf tier asserts
        #: this stops growing once the pool is warm.
        self.handles_created = 0
        #: Observability sink (gauges updated at the end of each run());
        #: deliberately off the per-event hot path.
        self.metrics: MetricsRegistry = NULL_REGISTRY
        #: Sim-profiler (:mod:`repro.obs.prof`). When enabled, :meth:`run`
        #: dispatches to :meth:`_run_profiled` — the bare loop below stays
        #: byte-for-byte untouched, so disabled profiling costs exactly one
        #: attribute check per run() call.
        self.profiler: SimProfiler | NullProfiler = NULL_PROFILER

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def seed(self) -> int:
        return self._seed

    def rng(self, name: str) -> random.Random:
        """A deterministic RNG stream derived from the kernel seed and ``name``.

        Distinct names give independent streams; the same (seed, name) pair
        always gives the same stream, no matter how many other streams exist.
        """
        return random.Random(f"{self._seed}/{name}")

    # ------------------------------------------------------------ scheduling
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``.

        The returned handle may be held and cancelled at any point; it is
        never recycled. Internal callers that discard the handle should use
        :meth:`post_at` instead, which draws from the event pool.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        seq = self._seq.next()
        handle = EventHandle(time, seq, fn, args, self)
        self.handles_created += 1
        heappush(self._heap, (time, seq, handle))
        return handle

    def post_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule a fire-and-forget event at absolute time ``time``.

        Pool-backed fast path for internal machinery (message deliveries):
        the handle is recycled after the event fires, so no reference to it
        ever escapes — callers that need cancellation must use
        :meth:`schedule_at`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        seq = self._seq.next()
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.seq = seq
            handle.fn = fn
            handle.args = args
            handle.cancelled = False
        else:
            handle = EventHandle(time, seq, fn, args, self)
            handle.pooled = True
            self.handles_created += 1
        heappush(self._heap, (time, seq, handle))

    # ------------------------------------------------------------ compaction
    def _maybe_compact(self) -> None:
        """Drop cancelled events when they dominate the heap.

        Rebuilds **in place** (slice assignment + heapify) so any local
        bindings of the heap list made by :meth:`run` stay valid.
        """
        heap = self._heap
        if self._cancelled < _COMPACT_MIN_CANCELLED or self._cancelled * 2 < len(heap):
            return
        pool = self._pool
        live = []
        for entry in heap:
            handle = entry[2]
            if handle.cancelled:
                if handle.pooled:
                    pool.append(handle)
            else:
                live.append(entry)
        heap[:] = live
        heapify(heap)
        self._cancelled = 0

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Run the next pending event. Returns False if the heap is empty."""
        heap = self._heap
        pool = self._pool
        while heap:
            event = heappop(heap)[2]
            if event.cancelled:
                self._cancelled -= 1
                if event.pooled:
                    event.args = ()
                    pool.append(event)
                continue
            self._now = event.time
            fn, args = event.fn, event.args
            # Mark fired without touching the cancelled counter (the event is
            # already out of the heap); held handles read as inactive.
            event.cancelled = True
            event.fn = None
            event.args = ()
            assert fn is not None
            fn(*args)
            if event.pooled:
                event.cancelled = False  # reset for reuse
                pool.append(event)
            self.events_processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired. Returns the number of events processed.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return even if the heap drained earlier — so back-to-back ``run``
        calls behave like contiguous wall-clock intervals.
        """
        if self.profiler.enabled:
            return self._run_profiled(until, max_events)
        if self._running:
            raise SimulationError("kernel.run() is not reentrant")
        self._running = True
        processed = 0
        # Loop-local bindings: the heap list object is stable (compaction is
        # in-place) and the pool list is never replaced.
        heap = self._heap
        pool = self._pool
        unlimited = max_events is None
        try:
            while heap:
                if not unlimited and processed >= max_events:
                    break
                head = heap[0]
                event = head[2]
                if event.cancelled:
                    heappop(heap)
                    self._cancelled -= 1
                    if event.pooled:
                        event.args = ()
                        pool.append(event)
                    continue
                time = head[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                self._now = time
                fn = event.fn
                args = event.args
                event.cancelled = True
                event.fn = None
                event.args = ()
                assert fn is not None
                fn(*args)
                if event.pooled:
                    event.cancelled = False
                    pool.append(event)
                processed += 1
        finally:
            self.events_processed += processed
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        if self.metrics.enabled:
            self.metrics.gauge("kernel.events_processed").set(self.events_processed)
            self.metrics.gauge("kernel.vtime").set(self._now)
            self.metrics.gauge("kernel.heap_size").set(len(self._heap))
        return processed

    def _run_profiled(self, until: float | None, max_events: int | None) -> int:
        """:meth:`run` with profiler hooks — an exact mirror of the bare
        loop (same pop order, cancellation handling, pool recycling, clock
        advance, end-of-run gauges) plus, per event: one host-time frame
        labeled with the callback's qualname, and a deterministic counter
        sample whenever virtual time crosses ``profiler.next_sample``.

        Kept separate so the unprofiled hot path carries zero extra work;
        the byte-identical-results invariant between the two loops is
        pinned by tests/integration/test_profiler.py.
        """
        if self._running:
            raise SimulationError("kernel.run() is not reentrant")
        self._running = True
        processed = 0
        heap = self._heap
        pool = self._pool
        unlimited = max_events is None
        profiler = self.profiler
        # The event frame is inlined rather than going through
        # profiler.enter_event/exit_event: this loop is the profiled hot
        # path and the perf tier bounds its overhead over the bare loop.
        # run() is not reentrant and handler scopes are balanced (OBS002),
        # so the scope stack is empty at every dispatch — the event frame's
        # parent is always the root and no parent propagation is needed.
        from repro.obs.prof.profiler import _Node

        stack = profiler._stack
        root_children = profiler._root.children
        host_clock = profiler.host_clock
        try:
            while heap:
                if not unlimited and processed >= max_events:
                    break
                head = heap[0]
                event = head[2]
                if event.cancelled:
                    heappop(heap)
                    self._cancelled -= 1
                    if event.pooled:
                        event.args = ()
                        pool.append(event)
                    continue
                time = head[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                self._now = time
                fn = event.fn
                args = event.args
                event.cancelled = True
                event.fn = None
                event.args = ()
                assert fn is not None
                label = fn.__qualname__
                node = root_children.get(label)
                if node is None:
                    node = root_children[label] = _Node(label)
                entry = [node, host_clock(), 0]
                stack.append(entry)
                try:
                    fn(*args)
                finally:
                    elapsed = host_clock() - entry[1]
                    stack.pop()
                    stat = node.stat
                    stat.calls += 1
                    stat.host_ns += elapsed - entry[2]
                if event.pooled:
                    event.cancelled = False
                    pool.append(event)
                processed += 1
                if self._now >= profiler.next_sample:
                    profiler.sample(
                        self._now,
                        self.events_processed + processed,
                        len(heap),
                        len(pool),
                    )
        finally:
            self.events_processed += processed
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        if self.metrics.enabled:
            self.metrics.gauge("kernel.events_processed").set(self.events_processed)
            self.metrics.gauge("kernel.vtime").set(self._now)
            self.metrics.gauge("kernel.heap_size").set(len(self._heap))
        return processed

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still in the heap (O(1))."""
        return len(self._heap) - self._cancelled

    @property
    def pool_size(self) -> int:
        """Recycled internal handles currently on the free list."""
        return len(self._pool)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel now={self._now:.6f}s pending={self.pending}>"
