"""Per-process CPU occupancy model.

The paper's benchmark service executes an *empty method*, so the measured
cost of a request is message handling: system-call / serialization /
protocol work at each end of every message. We model that as a single-server
FIFO queue per process: each message charges a fixed send or receive cost,
and work queues when the process is saturated. This is what makes the
closed-loop throughput curves (Figs. 5–9) saturate instead of growing
linearly with the client count.

``extra_per_message`` models per-connection bookkeeping overhead (poll/select
scanning, cache pressure): the experiment harness sets it proportionally to
the number of concurrent clients, which reproduces the peak-then-decline
shape of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True, slots=True)
class CpuProfile:
    """Static CPU cost parameters for one process, in seconds.

    * ``send_cost`` — CPU time to emit one message.
    * ``recv_cost`` — CPU time to receive + handle one message.
    * ``execute_cost`` — CPU time for the service's actual operation
      (zero for the paper's empty-method benchmark service).
    * ``extra_per_message`` — additional per-message overhead, used to model
      per-connection scanning costs that grow with the client population.
    """

    send_cost: float = 0.0
    recv_cost: float = 0.0
    execute_cost: float = 0.0
    extra_per_message: float = 0.0

    def scaled(self, factor: float) -> "CpuProfile":
        """A profile with all costs multiplied by ``factor`` (machine speed)."""
        return CpuProfile(
            send_cost=self.send_cost * factor,
            recv_cost=self.recv_cost * factor,
            execute_cost=self.execute_cost * factor,
            extra_per_message=self.extra_per_message * factor,
        )

    def with_extra(self, extra: float) -> "CpuProfile":
        """A copy with ``extra_per_message`` replaced (harness hook)."""
        return replace(self, extra_per_message=extra)


#: A CPU that costs nothing — useful for clients and pure-protocol tests.
FREE_CPU = CpuProfile()


@dataclass(slots=True)
class CpuModel:
    """Single-server FIFO CPU: tracks when the processor next becomes free.

    ``acquire(now, cost)`` books ``cost`` seconds of CPU starting no earlier
    than ``now`` and no earlier than the end of previously booked work, and
    returns the completion time. Total busy time is accumulated so harnesses
    can report utilization.
    """

    profile: CpuProfile = field(default_factory=CpuProfile)
    busy_until: float = 0.0
    busy_time: float = 0.0

    def acquire(self, now: float, cost: float) -> float:
        """Book ``cost`` seconds of CPU; return the completion time."""
        if cost < 0:
            raise ValueError(f"negative CPU cost: {cost}")
        start = max(now, self.busy_until)
        self.busy_until = start + cost
        self.busy_time += cost
        return self.busy_until

    def send_completion(self, now: float) -> float:
        """Completion time for emitting one message at/after ``now``."""
        return self.acquire(now, self.profile.send_cost + self.profile.extra_per_message)

    def recv_completion(self, now: float) -> float:
        """Completion time for receiving + handling one message at/after ``now``."""
        return self.acquire(now, self.profile.recv_cost + self.profile.extra_per_message)

    def execute_completion(self, now: float) -> float:
        """Completion time for running the service operation at/after ``now``."""
        return self.acquire(now, self.profile.execute_cost)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds this CPU spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def reset(self) -> None:
        """Forget booked work (used on process crash: in-flight work is lost)."""
        self.busy_until = 0.0
