"""Deterministic discrete-event simulation (DES) substrate.

This package stands in for the paper's physical testbeds (the UCSD Sysnet
cluster and PlanetLab): processes exchange messages over links with
configurable latency, each process has a CPU occupancy model so closed-loop
throughput saturates realistically, and the whole run is deterministic for
a given seed.

Layering:

* :mod:`repro.sim.kernel` — the event heap and virtual clock.
* :mod:`repro.sim.cpu` — per-process CPU occupancy.
* :mod:`repro.sim.process` — the actor base class and its environment.
* :mod:`repro.sim.world` — registry wiring processes, network and kernel
  together, with crash/recover fault injection.
* :mod:`repro.sim.trace` — optional structured event tracing.
"""

from repro.sim.cpu import CpuModel, CpuProfile
from repro.sim.kernel import EventHandle, Kernel
from repro.sim.process import Env, Process, TimerHandle
from repro.sim.trace import TraceEvent, TraceRecorder
from repro.sim.world import World

__all__ = [
    "CpuModel",
    "CpuProfile",
    "Env",
    "EventHandle",
    "Kernel",
    "Process",
    "TimerHandle",
    "TraceEvent",
    "TraceRecorder",
    "World",
]
