"""Structured event tracing for simulation runs.

Tracing is opt-in (it allocates one record per event) and is used by tests
to assert on protocol behaviour — e.g. "no Accept message was sent for a
read request under X-Paxos" — and by humans to debug schedules.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.types import ProcessId


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One traced occurrence.

    ``kind`` is a short tag: ``send``, ``deliver``, ``drop``, ``crash``,
    ``recover``, ``timer``, or anything a process chooses to emit via
    :meth:`TraceRecorder.emit`.
    """

    time: float
    kind: str
    src: ProcessId | None
    dst: ProcessId | None
    detail: Any = None

    def __str__(self) -> str:
        # Falsy-but-valid pids (0, "") must still render: test identity
        # against None, not truthiness.
        if self.src is not None or self.dst is not None:
            arrow = f"{self.src}->{self.dst}"
        else:
            arrow = ""
        return f"[{self.time * 1e3:10.4f}ms] {self.kind:8s} {arrow} {self.detail!r}"


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records.

    A predicate may be supplied to record only a subset (keeps long
    throughput runs cheap while still tracing, say, only crashes).
    """

    def __init__(self, predicate: Callable[[TraceEvent], bool] | None = None) -> None:
        self.events: list[TraceEvent] = []
        self._predicate = predicate

    def emit(
        self,
        time: float,
        kind: str,
        src: ProcessId | None = None,
        dst: ProcessId | None = None,
        detail: Any = None,
    ) -> None:
        event = TraceEvent(time=time, kind=kind, src=src, dst=dst, detail=detail)
        if self._predicate is None or self._predicate(event):
            self.events.append(event)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All recorded events with the given kind tag."""
        return [e for e in self.events if e.kind == kind]

    def messages(self, payload_type: type | None = None) -> list[TraceEvent]:
        """All ``send`` events, optionally filtered by payload type."""
        sends = self.of_kind("send")
        if payload_type is None:
            return sends
        return [e for e in sends if isinstance(e.detail, payload_type)]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def dump(self) -> str:  # pragma: no cover - debugging aid
        return "\n".join(str(e) for e in self.events)
