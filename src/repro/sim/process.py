"""Actor-style processes and the environment they run in.

A :class:`Process` is a message handler with timers — the unit the paper
calls a "process" (service replica or client). It is written against the
abstract :class:`Env` so the same protocol code runs unmodified on the
deterministic simulation (:class:`repro.sim.world.World`) and on the real
threaded transport (:mod:`repro.transport.local`).
"""

from __future__ import annotations

import abc
import random
from collections.abc import Callable, Iterable
from typing import Any

from repro.types import ProcessId


class TimerHandle(abc.ABC):
    """Cancellable handle returned by :meth:`Env.set_timer`."""

    @abc.abstractmethod
    def cancel(self) -> None:
        """Prevent the timer from firing. Idempotent."""

    @property
    @abc.abstractmethod
    def active(self) -> bool:
        """True while the timer is still pending."""


class Env(abc.ABC):
    """Everything a process may do to the outside world.

    Implementations: the simulation world (deterministic virtual time) and
    the threaded local transport (wall-clock time). Protocol code must only
    interact with the world through this interface — that is what makes the
    protocols testable under adversarial schedules.
    """

    @property
    @abc.abstractmethod
    def pid(self) -> ProcessId:
        """The identifier of the process this environment is bound to."""

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (virtual or wall-clock)."""

    @abc.abstractmethod
    def send(self, dst: ProcessId, msg: Any) -> None:
        """Send ``msg`` to ``dst``. Never blocks; delivery is asynchronous."""

    @abc.abstractmethod
    def set_timer(self, delay: float, fn: Callable[..., None], *args: Any) -> TimerHandle:
        """Run ``fn(*args)`` after ``delay`` seconds unless cancelled.

        Timers are implicitly cancelled when the owning process crashes.
        """

    @property
    @abc.abstractmethod
    def rng(self) -> random.Random:
        """This process's private random stream (deterministic in the sim).

        This is the source of *intentional* service nondeterminism (e.g. the
        randomized resource broker); each replica gets an independent stream,
        so replicas genuinely disagree unless the protocol synchronizes them.
        """

    def broadcast(self, dsts: Iterable[ProcessId], msg: Any) -> None:
        """Send ``msg`` to every destination (skipping self is the caller's
        choice — pass the peer list you mean)."""
        for dst in dsts:
            self.send(dst, msg)


class Process:
    """Base class for replicas and clients.

    Lifecycle: ``on_start`` once when the world starts (and never again),
    ``on_message`` per delivered message, ``on_crash`` / ``on_recover`` on
    fault injection. Everything not explicitly persisted is volatile and
    it is the subclass's job to reinitialize it in ``on_recover``.
    Replicas persist their Paxos state (promises, accepted proposals,
    checkpoints) through :class:`repro.storage.store.StableStore`, which
    models the durability boundary honestly (fsync, torn tails); the
    legacy ``self.stable`` dict remains for simple processes and tests —
    mutating it from protocol code is flagged by lint rule ``PROTO002``.
    """

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self.env: Env | None = None
        self.alive = True
        #: Crash-surviving storage (acceptor state lives here).
        self.stable: dict[str, Any] = {}

    # ------------------------------------------------------------- lifecycle
    def bind(self, env: Env) -> None:
        """Attach the environment. Called by the world/transport at registration."""
        self.env = env

    def on_start(self) -> None:
        """Called once when the world starts running."""

    def on_message(self, src: ProcessId, msg: Any) -> None:
        """Handle a delivered message."""

    def on_crash(self) -> None:
        """Called when the process crashes (volatile state is about to be lost)."""

    def on_recover(self) -> None:
        """Called when the process recovers; rebuild volatile state from
        ``self.stable`` here."""

    # ----------------------------------------------------------- convenience
    @property
    def now(self) -> float:
        assert self.env is not None, f"{self.pid} is not bound to an environment"
        return self.env.now

    @property
    def rng(self) -> random.Random:
        assert self.env is not None
        return self.env.rng

    def send(self, dst: ProcessId, msg: Any) -> None:
        assert self.env is not None
        self.env.send(dst, msg)

    def broadcast(self, dsts: Iterable[ProcessId], msg: Any) -> None:
        assert self.env is not None
        self.env.broadcast(dsts, msg)

    def set_timer(self, delay: float, fn: Callable[..., None], *args: Any) -> TimerHandle:
        assert self.env is not None
        return self.env.set_timer(delay, fn, *args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "up" if self.alive else "crashed"
        return f"<{type(self).__name__} {self.pid} ({status})>"
