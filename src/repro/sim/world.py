"""The simulation world: processes + network + kernel + fault injection.

The world implements the :class:`repro.sim.process.Env` contract on top of
the DES kernel. The message path models exactly the costs the paper's
evaluation measures:

1. the sender's CPU serializes outbound messages
   (``cpu.send_completion``) — the leader's outbound fan-out is real work;
2. the network adds per-link latency (and may duplicate or drop, if the
   link is configured adversarially);
3. the receiver's CPU serializes inbound handling
   (``cpu.recv_completion``) — this queueing is what saturates throughput.

Crash semantics follow the paper's model: a crashed process executes no
steps; messages addressed to it while down are lost (its connections are
gone); on recovery the process rebuilds volatile state in ``on_recover``.
An *epoch* counter invalidates timers and queued deliveries from before
the crash. What survives a crash is whatever the process itself keeps on
simulated stable storage — for replicas that is the
:class:`repro.storage.store.StableStore` device (checkpoint + WAL, minus
writes that were never fsynced), replayed in ``on_recover``; a process
may also fail-stop during recovery (set ``alive = False``) when its
storage is untrustworthy.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable
from typing import Any, Protocol as TypingProtocol

from repro.errors import SimulationError
from repro.obs.prof.profiler import NULL_PROFILER, FrameStat, NullProfiler, SimProfiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import Span
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer
from repro.sim.cpu import CpuModel, CpuProfile
from repro.sim.kernel import EventHandle, Kernel
from repro.sim.process import Env, Process, TimerHandle
from repro.sim.trace import TraceRecorder
from repro.transport.codec import encoded_size
from repro.types import ProcessId


class NetworkLike(TypingProtocol):
    """What the world needs from a network: per-copy delivery delays.

    ``depart`` is the absolute time the message leaves the sender. The
    return value holds one delay (relative to ``depart``) per delivered
    copy: ``()`` means the message is dropped, two entries mean it is
    duplicated.
    """

    def delays(self, src: ProcessId, dst: ProcessId, depart: float) -> tuple[float, ...]: ...


class ZeroLatencyNetwork:
    """Degenerate network: everything arrives instantly. Used in unit tests."""

    def delays(self, src: ProcessId, dst: ProcessId, depart: float) -> tuple[float, ...]:
        return (0.0,)


class _SimTimer(TimerHandle):
    __slots__ = ("_event", "_valid")

    def __init__(self, event: EventHandle) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancel()

    @property
    def active(self) -> bool:
        return not self._event.cancelled


class _SimEnv(Env):
    """Per-process facade over the world."""

    __slots__ = ("_world", "_pid", "_rng")

    def __init__(self, world: "World", pid: ProcessId) -> None:
        self._world = world
        self._pid = pid
        self._rng = world.kernel.rng(f"proc/{pid}")

    @property
    def pid(self) -> ProcessId:
        return self._pid

    @property
    def now(self) -> float:
        return self._world.kernel.now

    @property
    def rng(self) -> random.Random:
        return self._rng

    def send(self, dst: ProcessId, msg: Any) -> None:
        self._world._send(self._pid, dst, msg)

    def broadcast(self, dsts: Iterable[ProcessId], msg: Any) -> None:
        self._world._send_many(self._pid, dsts, msg)

    def set_timer(self, delay: float, fn: Callable[..., None], *args: Any) -> TimerHandle:
        return self._world._set_timer(self._pid, delay, fn, *args)


class World:
    """Owns every process in one simulated deployment.

    Typical use::

        kernel = Kernel(seed=1)
        world = World(kernel, network)
        world.add(replica, cpu=CpuProfile(send_cost=3e-6, recv_cost=3e-6))
        world.add(client)
        world.start()
        kernel.run(until=10.0)
    """

    def __init__(
        self,
        kernel: Kernel,
        network: NetworkLike | None = None,
        trace: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
        measure_bytes: bool = False,
        tracer: "Tracer | NullTracer | None" = None,
        profiler: "SimProfiler | NullProfiler | None" = None,
    ) -> None:
        self.kernel = kernel
        self.network: NetworkLike = network if network is not None else ZeroLatencyNetwork()
        self.trace = trace
        #: Per-message-type send/deliver/drop (and optionally byte) counts
        #: land here. Purely passive: metrics never touch RNGs or schedules.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        #: Causal tracer: the world is the envelope layer, so it owns context
        #: propagation — a message span is captured at ``_send``, travels as
        #: an extra (always-present) argument through the kernel events, and
        #: is re-activated around the receiver's handler. Message dataclasses
        #: are never touched, and the event schedule is identical with
        #: tracing on or off.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Sim-profiler (:mod:`repro.obs.prof`). Passive like the tracer:
        #: it reads the CPU-cost constants and the host clock but never an
        #: RNG or a schedule, so profiled runs are byte-identical.
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._measure_bytes = measure_bytes and self.metrics.enabled
        self._processes: dict[ProcessId, Process] = {}
        self._cpus: dict[ProcessId, CpuModel] = {}
        self._epochs: dict[ProcessId, int] = {}
        self._started = False
        # Hot-path caches: instrument lookups per (pid, message type), so the
        # per-message cost with metrics on is one dict hit instead of two
        # f-strings + registry lookups. Purely an access-path optimization —
        # the recorded counter values are identical with or without it.
        self._send_instruments: dict[
            tuple[ProcessId, type], tuple[Any, Any, Any] | None
        ] = {}
        self._recv_instruments: dict[tuple[ProcessId, type], tuple[Any, Any]] = {}
        self._drop_instruments: dict[type, Any] = {}
        # Profiler caches, same pattern: one dict hit per message when
        # profiling is on. Send/recv entries are (FrameStat, cpu_cost) —
        # the cost constants are frozen per process, so they are resolved
        # once per (src, dst, type). Handler entries are the interned
        # (actor_frame, handler_frame) label pair.
        self._prof_send: dict[tuple[ProcessId, ProcessId, type], tuple[FrameStat, float]] = {}
        self._prof_recv: dict[tuple[ProcessId, ProcessId, type], tuple[FrameStat, float]] = {}
        self._prof_handle: dict[tuple[ProcessId, type], tuple[str, str]] = {}

    # -------------------------------------------------------------- registry
    def add(self, process: Process, cpu: CpuProfile | None = None) -> Process:
        """Register a process; returns it for chaining."""
        if process.pid in self._processes:
            raise SimulationError(f"duplicate process id {process.pid!r}")
        self._processes[process.pid] = process
        self._cpus[process.pid] = CpuModel(profile=cpu if cpu is not None else CpuProfile())
        self._epochs[process.pid] = 0
        process.bind(_SimEnv(self, process.pid))
        if self._started and process.alive:
            # late registration: start it on the next tick
            self.kernel.schedule(0.0, self._start_one, process.pid)
        return process

    def process(self, pid: ProcessId) -> Process:
        return self._processes[pid]

    def cpu(self, pid: ProcessId) -> CpuModel:
        return self._cpus[pid]

    @property
    def pids(self) -> list[ProcessId]:
        return list(self._processes)

    def start(self) -> None:
        """Invoke ``on_start`` on every registered, alive process."""
        if self._started:
            raise SimulationError("world already started")
        self._started = True
        for pid in list(self._processes):
            self._start_one(pid)

    def _start_one(self, pid: ProcessId) -> None:
        process = self._processes[pid]
        if process.alive:
            profiler = self.profiler
            if profiler.enabled:
                profiler.enter_handler(str(pid), "on_start")
                try:
                    process.on_start()
                finally:
                    profiler.exit_handler()
            else:
                process.on_start()

    # ------------------------------------------------------------- messaging
    def _count_drop(self, msg: Any) -> None:
        if self.metrics.enabled:
            counter = self._drop_instruments.get(type(msg))
            if counter is None:
                counter = self._drop_instruments[type(msg)] = self.metrics.counter(
                    f"msg.drop.{type(msg).__name__}"
                )
            counter.inc()

    def _send_counters(self, src: ProcessId, msg_type: type) -> tuple[Any, Any, Any]:
        """Cached (msg.send, proc.send, msg.send_bytes|None) counters."""
        key = (src, msg_type)
        entry = self._send_instruments.get(key)
        if entry is None:
            type_name = msg_type.__name__
            entry = self._send_instruments[key] = (
                self.metrics.counter(f"msg.send.{type_name}"),
                self.metrics.counter(f"proc.{src}.send.{type_name}"),
                self.metrics.counter(f"msg.send_bytes.{type_name}")
                if self._measure_bytes
                else None,
            )
        return entry

    def _send(
        self, src: ProcessId, dst: ProcessId, msg: Any, size_hint: int | None = None
    ) -> None:
        """Route one message; ``size_hint`` lets broadcasts encode once."""
        sender = self._processes.get(src)
        if sender is None or not sender.alive:
            return  # a crashed process executes no steps
        if dst not in self._processes:
            raise SimulationError(f"{src} sent to unknown process {dst!r}")
        if self.trace is not None:
            self.trace.emit(self.kernel.now, "send", src, dst, msg)
        metrics = self.metrics
        if metrics.enabled:
            sent, proc_sent, sent_bytes = self._send_counters(src, type(msg))
            sent.inc()
            proc_sent.inc()
            if sent_bytes is not None:
                sent_bytes.inc(size_hint if size_hint is not None else encoded_size(msg))
        tracer = self.tracer
        span: Span | None = None
        if tracer.enabled:
            span = tracer.start_span(
                f"msg.{type(msg).__name__}", pid=dst, kind="message",
                attrs={"src": src, "dst": dst},
            )
        kernel = self.kernel
        depart = self._cpus[src].send_completion(kernel._now)
        profiler = self.profiler
        if profiler.enabled:
            pkey = (src, dst, type(msg))
            pentry = self._prof_send.get(pkey)
            if pentry is None:
                cpu = self._cpus[src].profile
                pentry = self._prof_send[pkey] = (
                    profiler.stat(
                        (str(src),
                         f"send.{type(msg).__name__}.{profiler.actor_kind(dst)}")
                    ),
                    cpu.send_cost + cpu.extra_per_message,
                )
            pentry[0].add_cpu(pentry[1])
        copies = self.network.delays(src, dst, depart)
        if not copies:
            if self.trace is not None:
                self.trace.emit(kernel.now, "drop", src, dst, msg)
            self._count_drop(msg)
            if span is not None:
                cause = getattr(self.network, "last_drop_cause", None)
                if cause:
                    span.attrs["cause"] = cause
                tracer.end(span, status="dropped")
        elif len(copies) > 1:
            # Duplicated delivery: mirror the drop-cause plumbing so the
            # duplicate shows up in trace timelines and on the message span.
            if self.trace is not None:
                self.trace.emit(kernel.now, "dup", src, dst, msg)
            if metrics.enabled:
                metrics.counter(f"msg.dup.{type(msg).__name__}").inc()
            if span is not None:
                cause = getattr(self.network, "last_dup_cause", None)
                span.attrs["dup"] = cause or "link"
        arrive = self._arrive
        for delay in copies:
            kernel.post_at(depart + delay, arrive, src, dst, msg, span)

    def _send_many(self, src: ProcessId, dsts: Iterable[ProcessId], msg: Any) -> None:
        """Broadcast fast path: identical per-destination behaviour to a
        ``_send`` loop (same CPU booking order, same event sequence), but the
        wire size is encoded **once** per broadcast — the dominant hidden
        cost of byte accounting, since leaders fan the same payload out to
        every peer."""
        size_hint: int | None = None
        if self._measure_bytes:
            sender = self._processes.get(src)
            if sender is None or not sender.alive:
                return
            size_hint = encoded_size(msg)
        for dst in dsts:
            self._send(src, dst, msg, size_hint)

    def _arrive(
        self, src: ProcessId, dst: ProcessId, msg: Any, span: Span | None
    ) -> None:
        receiver = self._processes[dst]
        if not receiver.alive:
            if self.trace is not None:
                self.trace.emit(self.kernel.now, "drop", src, dst, msg)
            self._count_drop(msg)
            if span is not None:
                span.attrs.setdefault("cause", "crashed")
                self.tracer.end(span, status="dropped")
            return
        kernel = self.kernel
        completion = self._cpus[dst].recv_completion(kernel._now)
        profiler = self.profiler
        if profiler.enabled:
            pkey = (src, dst, type(msg))
            pentry = self._prof_recv.get(pkey)
            if pentry is None:
                cpu = self._cpus[dst].profile
                pentry = self._prof_recv[pkey] = (
                    profiler.stat(
                        (str(dst),
                         f"recv.{type(msg).__name__}.{profiler.actor_kind(src)}")
                    ),
                    cpu.recv_cost + cpu.extra_per_message,
                )
            pentry[0].add_cpu(pentry[1])
        kernel.post_at(completion, self._handle, src, dst, msg, self._epochs[dst], span)

    def _handle(
        self, src: ProcessId, dst: ProcessId, msg: Any, epoch: int, span: Span | None
    ) -> None:
        receiver = self._processes[dst]
        if not receiver.alive or self._epochs[dst] != epoch:
            if self.trace is not None:
                self.trace.emit(self.kernel.now, "drop", src, dst, msg)
            self._count_drop(msg)
            if span is not None:
                span.attrs.setdefault("cause", "stale_epoch")
                self.tracer.end(span, status="dropped")
            return
        if self.trace is not None:
            self.trace.emit(self.kernel.now, "deliver", src, dst, msg)
        metrics = self.metrics
        if metrics.enabled:
            key = (dst, type(msg))
            entry = self._recv_instruments.get(key)
            if entry is None:
                type_name = type(msg).__name__
                entry = self._recv_instruments[key] = (
                    metrics.counter(f"msg.deliver.{type_name}"),
                    metrics.counter(f"proc.{dst}.recv.{type_name}"),
                )
            entry[0].inc()
            entry[1].inc()
        profiler = self.profiler
        if profiler.enabled:
            pkey = (dst, type(msg))
            frames = self._prof_handle.get(pkey)
            if frames is None:
                frames = self._prof_handle[pkey] = (
                    str(dst), "on_message." + type(msg).__name__,
                )
            profiler.enter_handler(frames[0], frames[1])
        tracer = self.tracer
        try:
            if tracer.enabled:
                tracer.end(span)  # duplicate copies keep the first delivery's end
                token = tracer.activate(span)
                try:
                    receiver.on_message(src, msg)
                finally:
                    tracer.restore(token)
            else:
                receiver.on_message(src, msg)
        finally:
            if profiler.enabled:
                profiler.exit_handler()

    # ----------------------------------------------------------------- timers
    def _set_timer(
        self, pid: ProcessId, delay: float, fn: Callable[..., None], *args: Any
    ) -> TimerHandle:
        epoch = self._epochs[pid]
        # Timers carry the ambient span across the delay: a retransmit or a
        # deferred execution stays inside the request that armed it.
        ctx = self.tracer.current
        # Profiler frames are resolved at arm time (the profiler is fixed
        # for a run), so a disabled run closes over None and pays nothing.
        tframes = (str(pid), "timer." + fn.__name__) if self.profiler.enabled else None

        def fire() -> None:
            process = self._processes[pid]
            if process.alive and self._epochs[pid] == epoch:
                if self.trace is not None:
                    self.trace.emit(self.kernel.now, "timer", pid, None, fn.__name__)
                profiler = self.profiler
                if tframes is not None and profiler.enabled:
                    profiler.enter_handler(tframes[0], tframes[1])
                token = self.tracer.activate(ctx)
                try:
                    fn(*args)
                finally:
                    self.tracer.restore(token)
                    if tframes is not None and profiler.enabled:
                        profiler.exit_handler()

        return _SimTimer(self.kernel.schedule(delay, fire))

    # ------------------------------------------------------------ fault hooks
    def crash(self, pid: ProcessId) -> None:
        """Crash ``pid``: volatile state and pending timers/deliveries die."""
        process = self._processes[pid]
        if not process.alive:
            return
        process.alive = False
        self._epochs[pid] += 1
        self._cpus[pid].reset()
        if self.trace is not None:
            self.trace.emit(self.kernel.now, "crash", pid, None)
        if self.tracer.enabled:
            self.tracer.instant(f"crash:{pid}", pid=pid, kind="fault", parent=None)
        process.on_crash()

    def recover(self, pid: ProcessId) -> None:
        """Recover ``pid``; it rebuilds volatile state in ``on_recover``."""
        process = self._processes[pid]
        if process.alive:
            return
        process.alive = True
        if self.trace is not None:
            self.trace.emit(self.kernel.now, "recover", pid, None)
        if self.tracer.enabled:
            self.tracer.instant(f"recover:{pid}", pid=pid, kind="fault", parent=None)
        process.on_recover()

    def schedule_crash(self, pid: ProcessId, at: float) -> EventHandle:
        """Schedule a crash at absolute time ``at``."""
        return self.kernel.schedule_at(at, self.crash, pid)

    def schedule_recover(self, pid: ProcessId, at: float) -> EventHandle:
        """Schedule a recovery at absolute time ``at``."""
        return self.kernel.schedule_at(at, self.recover, pid)

    def alive_pids(self) -> list[ProcessId]:
        return [pid for pid, p in self._processes.items() if p.alive]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<World processes={len(self._processes)} t={self.kernel.now:.6f}s>"


__all__ = ["World", "NetworkLike", "ZeroLatencyNetwork"]
