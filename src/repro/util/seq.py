"""Monotonic sequence generation helpers."""

from __future__ import annotations

import itertools
from collections.abc import Iterator


class SequenceGenerator:
    """A restartable monotonic counter.

    Used for event sequence numbers (heap tie-breaking), request ids and
    ballot rounds. Deliberately not thread-safe: the simulation kernel is
    single-threaded, and each real transport owns its own generator.
    """

    __slots__ = ("_counter",)

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)

    def next(self) -> int:
        """Return the next value in the sequence."""
        return next(self._counter)

    def __iter__(self) -> Iterator[int]:
        return self._counter
