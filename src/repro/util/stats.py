"""Statistics helpers used by the evaluation harness.

The paper reports averages with **99% confidence intervals** (Student-t).
:func:`summarize` reproduces exactly that, plus percentiles that are handy
when inspecting tail latency.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class Summary:
    """Summary statistics of a sample, in the units of the input."""

    n: int
    mean: float
    std: float
    ci99: float          #: half-width of the 99% confidence interval
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    @property
    def ci_lo(self) -> float:
        return self.mean - self.ci99

    @property
    def ci_hi(self) -> float:
        return self.mean + self.ci99

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.6g} ±{self.ci99:.2g} (n={self.n})"


def confidence_interval(samples: Sequence[float], confidence: float = 0.99) -> float:
    """Half-width of the two-sided Student-t confidence interval of the mean.

    Returns 0.0 for samples of size < 2 (no variance estimate is possible);
    the paper's experiments always have hundreds of samples.
    """
    # Imported here, not at module scope: scipy costs ~0.7 s to import and
    # ``repro.util`` sits on the import path of every CLI entry point — the
    # lint and sim commands never need it.
    from scipy import stats as _scipy_stats

    n = len(samples)
    if n < 2:
        return 0.0
    arr = np.asarray(samples, dtype=float)
    sem = arr.std(ddof=1) / np.sqrt(n)
    if sem == 0.0:
        return 0.0
    t_crit = _scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
    return float(t_crit * sem)


def summarize(samples: Sequence[float], confidence: float = 0.99) -> Summary:
    """Compute :class:`Summary` statistics for a non-empty sample."""
    if len(samples) == 0:
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(samples, dtype=float)
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        ci99=confidence_interval(samples, confidence),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )
