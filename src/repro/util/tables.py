"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output aligned and copy-pasteable into EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    fmt: str = "{:.1f}",
) -> str:
    """Render one figure-style data set: one row per x value, one column per series."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x, *(fmt.format(series[name][i]) for name in series)])
    return f"{title}\n{format_table(headers, rows)}"
