"""Small shared utilities: statistics, sequences, table rendering."""

from repro.util.seq import SequenceGenerator
from repro.util.stats import Summary, confidence_interval, summarize
from repro.util.tables import format_series, format_table

__all__ = [
    "SequenceGenerator",
    "Summary",
    "confidence_interval",
    "summarize",
    "format_series",
    "format_table",
]
