"""Precomputed pickling for frozen slotted dataclasses.

Slotted dataclasses pickle through :func:`dataclasses._dataclass_getstate`,
which calls ``dataclasses.fields()`` — and therefore rebuilds the field
list — on **every** dump, and ships the state as a per-instance dict of
field-name keys. For the simulator's byte accounting (one ``pickle.dumps``
per sent message) that is the single largest hidden cost.

:func:`fast_pickle` computes the field tuple once at class-creation time
and swaps in an :func:`operator.attrgetter`-based ``__getstate__`` plus a
matching ``__setstate__``. The wire format stays pure pickle and
round-trips through the TCP transport unchanged; only the state container
changes (a value tuple instead of the ``(None, {name: value})`` pair), so
frames also get a little smaller.

Apply it *outside* ``@dataclass(slots=True)`` — the dataclass decorator
replaces the class object when adding slots, and ``fast_pickle`` must see
the final class::

    @fast_pickle
    @dataclass(frozen=True, slots=True)
    class Accept: ...
"""

from __future__ import annotations

import dataclasses
from operator import attrgetter
from typing import TypeVar

T = TypeVar("T")


def fast_pickle(cls: type[T]) -> type[T]:
    """Install precomputed ``__getstate__``/``__setstate__`` on ``cls``."""
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"fast_pickle requires a dataclass, got {cls!r}")
    names = tuple(f.name for f in dataclasses.fields(cls))
    if not names:
        return cls  # nothing to snapshot; default pickling is already cheap
    getter = attrgetter(*names)
    setattr_ = object.__setattr__  # works for frozen dataclasses too

    if len(names) == 1:
        only = names[0]

        def __getstate__(self: T) -> tuple:
            return (getter(self),)

        def __setstate__(self: T, state: tuple) -> None:
            setattr_(self, only, state[0])

    else:

        def __getstate__(self: T) -> tuple:
            return getter(self)

        def __setstate__(self: T, state: tuple) -> None:
            for name, value in zip(names, state, strict=True):
                setattr_(self, name, value)

    cls.__getstate__ = __getstate__  # type: ignore[attr-defined]
    cls.__setstate__ = __setstate__  # type: ignore[attr-defined]
    return cls
