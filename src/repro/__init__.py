"""repro — Replicating Nondeterministic Services on Grid Environments.

A faithful, simulator-backed reproduction of the HPDC 2006 paper by Zhang,
Junqueira, Marzullo, Hiltunen and Schlichting: Paxos-based replication of
nondeterministic services, with the X-Paxos read optimization and the
T-Paxos transaction optimization.

Quick tour::

    from repro import ClusterSpec, Cluster, sysnet, single_kind_steps, RequestKind

    spec = ClusterSpec(profile=sysnet(), seed=1)
    steps = single_kind_steps(RequestKind.WRITE, 100)
    cluster = Cluster(spec, [steps]).run()
    print(cluster.clients[0].rrts())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.client.client import Client
from repro.client.workload import Step, paper_txn_steps, single_kind_steps, txn_steps
from repro.cluster.faults import FaultSchedule
from repro.cluster.harness import Cluster, ClusterSpec
from repro.cluster.metrics import RunResult, collect
from repro.core.ballot import Ballot, ProposalNumber
from repro.core.config import ReplicaConfig
from repro.core.multipaxos import MultiPaxosReplica, multipaxos_config
from repro.core.replica import Replica, ReplicaRole
from repro.core.requests import ClientRequest, RequestId
from repro.election.omega import OmegaElector
from repro.election.static import ManualElectorGroup, StaticElector
from repro.net.profiles import berkeley_princeton, get_profile, sysnet, wan
from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import RunExport, export_run, load_export
from repro.services.base import ExecutionContext, ExecutionResult, Service
from repro.types import ReplyStatus, RequestKind, StateTransferMode

__version__ = "1.0.0"

__all__ = [
    "Ballot",
    "Client",
    "ClientRequest",
    "Cluster",
    "ClusterSpec",
    "ExecutionContext",
    "ExecutionResult",
    "FaultSchedule",
    "ManualElectorGroup",
    "MetricsRegistry",
    "MultiPaxosReplica",
    "OmegaElector",
    "ProposalNumber",
    "Replica",
    "ReplicaConfig",
    "ReplicaRole",
    "ReplyStatus",
    "RequestId",
    "RequestKind",
    "RunExport",
    "RunResult",
    "Service",
    "StateTransferMode",
    "StaticElector",
    "Step",
    "berkeley_princeton",
    "collect",
    "export_run",
    "load_export",
    "multipaxos_config",
    "get_profile",
    "paper_txn_steps",
    "single_kind_steps",
    "sysnet",
    "txn_steps",
    "wan",
    "__version__",
]
