"""Greedy minimization of a failing nemesis schedule.

Given a schedule whose trial violated some invariant, the shrinker
searches for a *smaller* schedule that still violates the **same**
invariant — the minimal repro a human actually wants to read. Passes, run
to fixpoint:

1. **Drop events** — remove one event at a time (largest index first, so
   cleanup events go before the faults they pair with); keep the removal
   if the trial still fails the same way.
2. **Reduce workload** — fewer clients, then fewer requests per client.
3. **Compress time** — pull every event proportionally toward t=0 and
   shorten the horizon, so the repro doesn't spend simulated seconds
   doing nothing.

Every candidate is evaluated by actually re-running the deterministic
trial, so a shrunk schedule is *known* failing, not assumed. The total
number of trial runs is bounded by ``budget``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.chaos.runner import ChaosOptions, ChaosResult, run_with_schedule
from repro.chaos.schedule import NemesisSchedule


@dataclass
class ShrinkOutcome:
    """The minimized repro plus bookkeeping about the search."""

    schedule: NemesisSchedule
    options: ChaosOptions
    result: ChaosResult
    invariant: str
    trials: int
    history: list[str] = field(default_factory=list)

    @property
    def events(self) -> int:
        return len(self.schedule)


def _fails_same_way(result: ChaosResult, invariant: str) -> bool:
    return any(v.invariant == invariant for v in result.violations)


def shrink(
    schedule: NemesisSchedule,
    options: ChaosOptions,
    invariant: str | None = None,
    budget: int = 200,
    on_progress: Callable[[str], None] | None = None,
) -> ShrinkOutcome:
    """Minimize ``schedule`` while it still violates ``invariant``.

    ``invariant`` defaults to the first violation of the initial run.
    Raises ``ValueError`` when the initial trial does not fail at all.
    """
    trials = 0
    history: list[str] = []

    def note(message: str) -> None:
        history.append(message)
        if on_progress is not None:
            on_progress(message)

    def attempt(
        candidate: NemesisSchedule, candidate_options: ChaosOptions
    ) -> ChaosResult | None:
        """Run a candidate; return its result iff it still fails the same
        way and the budget allows."""
        nonlocal trials
        if trials >= budget:
            return None
        trials += 1
        result = run_with_schedule(candidate, candidate_options)
        assert target is not None
        return result if _fails_same_way(result, target) else None

    target = invariant
    baseline = run_with_schedule(schedule, options)
    trials += 1
    if not baseline.violations:
        raise ValueError("schedule does not fail; nothing to shrink")
    if target is None:
        target = baseline.violations[0].invariant
    elif not _fails_same_way(baseline, target):
        raise ValueError(
            f"schedule does not violate {target!r}; it violates "
            f"{sorted({v.invariant for v in baseline.violations})}"
        )
    note(
        f"baseline: {len(schedule)} events, target invariant {target!r}"
    )

    best_schedule = schedule
    best_options = options
    best_result = baseline

    # Pass 1: drop events to fixpoint.
    changed = True
    while changed and trials < budget:
        changed = False
        for index in reversed(range(len(best_schedule.events))):
            events = (
                best_schedule.events[:index] + best_schedule.events[index + 1:]
            )
            candidate = best_schedule.with_events(events)
            result = attempt(candidate, best_options)
            if result is not None:
                dropped = best_schedule.events[index]
                best_schedule, best_result = candidate, result
                changed = True
                note(f"dropped {dropped.describe()} -> {len(events)} events")
    # Pass 2: reduce the workload (fewer clients, then fewer requests).
    while best_options.n_clients > 1 and trials < budget:
        candidate_options = dataclasses.replace(
            best_options, n_clients=best_options.n_clients - 1
        )
        result = attempt(best_schedule, candidate_options)
        if result is None:
            break
        best_options, best_result = candidate_options, result
        note(f"reduced to {best_options.n_clients} client(s)")
    while best_options.requests_per_client > 1 and trials < budget:
        candidate_options = dataclasses.replace(
            best_options,
            requests_per_client=max(1, best_options.requests_per_client // 2),
        )
        result = attempt(best_schedule, candidate_options)
        if result is None:
            break
        best_options, best_result = candidate_options, result
        note(f"reduced to {best_options.requests_per_client} request(s)/client")

    # Pass 3: compress time toward t=0 (repros should not idle).
    for factor in (0.25, 0.5, 0.75):
        if trials >= budget:
            break
        horizon = max(best_options.horizon * factor, 0.05)
        scale = horizon / best_options.horizon
        events = tuple(
            dataclasses.replace(
                event,
                at=round(event.at * scale, 4),
                duration=round(event.duration * scale, 4),
            )
            for event in best_schedule.events
        )
        candidate = dataclasses.replace(
            best_schedule, horizon=horizon, events=events
        )
        candidate_options = dataclasses.replace(best_options, horizon=horizon)
        result = attempt(candidate, candidate_options)
        if result is not None:
            best_schedule, best_options, best_result = (
                candidate, candidate_options, result,
            )
            note(f"compressed horizon to {horizon:g}s")
            break

    # One more drop pass: compression may have made more events redundant.
    changed = True
    while changed and trials < budget:
        changed = False
        for index in reversed(range(len(best_schedule.events))):
            events = (
                best_schedule.events[:index] + best_schedule.events[index + 1:]
            )
            candidate = best_schedule.with_events(events)
            result = attempt(candidate, best_options)
            if result is not None:
                dropped = best_schedule.events[index]
                best_schedule, best_result = candidate, result
                changed = True
                note(f"dropped {dropped.describe()} -> {len(events)} events")

    note(
        f"minimized to {len(best_schedule)} events in {trials} trials"
    )
    assert target is not None
    return ShrinkOutcome(
        schedule=best_schedule,
        options=best_options,
        result=best_result,
        invariant=target,
        trials=trials,
        history=history,
    )
