"""Chaos run reporting: deterministic summaries and violation dossiers.

Two outputs per sweep:

* a **machine-readable summary** (``to_summary`` → JSON): one record per
  seed plus aggregate counts. Strictly deterministic — same seeds, same
  code, byte-identical bytes. No host wall-clock time appears anywhere.
* a **human report** (``render_report``): the per-seed table, and for each
  violating seed a dossier with the invariant details, the fault timeline,
  the runnable scripted repro, and (for traced runs) span waterfalls of
  the slowest requests from the PR-2 causal tracer.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.runner import ChaosResult
    from repro.chaos.shrink import ShrinkOutcome


# ------------------------------------------------------------------- summary
def to_summary(
    results: Sequence["ChaosResult"],
    shrink_outcomes: Iterable["ShrinkOutcome"] = (),
) -> dict[str, Any]:
    """Aggregate a seed sweep into one JSON-ready mapping (deterministic)."""
    records = [result.to_dict() for result in results]
    violating = [r for r in records if not r["ok"]]
    by_invariant: dict[str, int] = {}
    for record in violating:
        for violation in record["violations"]:
            name = violation["invariant"]
            by_invariant[name] = by_invariant.get(name, 0) + 1
    summary: dict[str, Any] = {
        "seeds": len(records),
        "ok": len(records) - len(violating),
        "violating": len(violating),
        "violations_by_invariant": {
            k: by_invariant[k] for k in sorted(by_invariant)
        },
        "results": records,
    }
    shrunk = [
        {
            "seed": outcome.schedule.seed,
            "invariant": outcome.invariant,
            "events": outcome.events,
            "trials": outcome.trials,
            "schedule": outcome.schedule.to_dict(),
        }
        for outcome in shrink_outcomes
    ]
    if shrunk:
        summary["shrunk"] = shrunk
    return summary


def dump_summary(summary: dict[str, Any]) -> str:
    """Canonical JSON encoding (sorted keys, fixed separators): the same
    sweep always produces byte-identical bytes."""
    return json.dumps(summary, sort_keys=True, separators=(",", ":")) + "\n"


# -------------------------------------------------------------- human report
def _result_row(result: "ChaosResult") -> str:
    status = "ok" if result.ok else ",".join(
        sorted({v.invariant for v in result.violations})
    )
    return (
        f"{result.seed:>6}  {result.options.protocol:<7} "
        f"{len(result.schedule):>6}  {result.completed_requests:>9}  "
        f"{result.sim_time:>8.3f}  {status}"
    )


def _waterfalls(result: "ChaosResult", limit: int = 3) -> str:
    """Span waterfalls of the slowest finished requests in a traced run."""
    cluster = result.cluster
    if cluster is None or not cluster.tracer.enabled:
        return ""
    store = cluster.tracer.store
    roots = [s for s in store.roots() if s.kind == "request" and s.finished]
    roots.sort(key=lambda s: s.duration, reverse=True)
    sections = []
    for root in roots[:limit]:
        tree = store.tree(root.trace_id)
        sections.append(
            f"--- slowest request {root.name} "
            f"({root.duration * 1e3:.2f} ms) ---\n"
            + tree.render_waterfall()
        )
    return "\n".join(sections)


def render_violation(result: "ChaosResult") -> str:
    """Full dossier for one violating seed."""
    lines = [
        f"seed {result.seed} ({result.options.protocol}): "
        f"{len(result.violations)} violation(s)",
    ]
    for violation in result.violations:
        lines.append(f"  * {violation}")
        for key in sorted(violation.data):
            lines.append(f"      {key}: {violation.data[key]}")
    lines.append("")
    lines.append(result.schedule.describe())
    lines.append("")
    lines.append("runnable repro script:")
    lines.extend(
        f"  {line}" for line in result.schedule.to_script().splitlines()
    )
    waterfalls = _waterfalls(result)
    if waterfalls:
        lines.append("")
        lines.append(waterfalls)
    return "\n".join(lines)


def render_report(
    results: Sequence["ChaosResult"],
    shrink_outcomes: Sequence["ShrinkOutcome"] = (),
) -> str:
    """The per-seed table plus a dossier per violating seed."""
    lines = [
        "  seed  proto    events   requests  sim_time  status",
        "  ----  -----    ------   --------  --------  ------",
    ]
    lines.extend(_result_row(result) for result in results)
    failing = [r for r in results if not r.ok]
    lines.append("")
    lines.append(
        f"{len(results)} seed(s): {len(results) - len(failing)} ok, "
        f"{len(failing)} violating"
    )
    for result in failing:
        lines.append("")
        lines.append("=" * 70)
        lines.append(render_violation(result))
    for outcome in shrink_outcomes:
        lines.append("")
        lines.append("=" * 70)
        lines.append(
            f"shrunk seed {outcome.schedule.seed} "
            f"({outcome.invariant}): {outcome.events} event(s) "
            f"after {outcome.trials} trial(s)"
        )
        for step in outcome.history:
            lines.append(f"  {step}")
        lines.append("")
        lines.append(outcome.schedule.describe())
        lines.append("")
        lines.append("runnable repro script:")
        lines.extend(
            f"  {line}"
            for line in outcome.schedule.to_script().splitlines()
        )
    return "\n".join(lines) + "\n"
