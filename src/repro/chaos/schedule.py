"""Randomized nemesis schedules: seeded fault timelines.

A :class:`NemesisSchedule` is a flat, serializable list of fault events
sampled from a single seed. The generator walks virtual time forward,
keeping a model of which replicas are down and how the replica set is
partitioned, so that the sampled timeline is *coherent*: it never switches
leadership to a crashed replica, it pairs every crash with a recovery and
every partition with a heal, and (unless ``allow_majority_loss``) it keeps
a majority of replicas alive at all times. At the horizon it emits a final
heal + recover-all + leader-switch so that liveness-after-heal is a fair
check: once a majority is stable, clients must finish.

Schedules compile onto the scripted :class:`repro.cluster.faults.
FaultSchedule` API, so a generated (or shrunk) schedule can always be
replayed as an ordinary scripted scenario — :meth:`NemesisSchedule.
to_script` emits exactly that code.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field, replace
from typing import Any, TYPE_CHECKING

from repro.errors import ConfigError
from repro.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.faults import FaultSchedule
    from repro.cluster.harness import Cluster

#: Event kinds a schedule may contain.
EVENT_KINDS = (
    "crash",
    "recover",
    "partition",
    "heal",
    "leader",
    "loss_burst",
    "dup_burst",
    "latency_spike",
    "torn_write",
    "lost_fsync",
    "disk_stall",
    "corrupt_record",
)

#: The storage-nemesis subset (only sampled with ``storage=True``).
STORAGE_KINDS = ("torn_write", "lost_fsync", "disk_stall", "corrupt_record")


@dataclass(frozen=True, slots=True)
class NemesisEvent:
    """One fault event at an absolute simulated time.

    * ``crash`` / ``recover`` — ``pids`` holds the single target.
    * ``partition`` — ``groups`` holds the replica grouping; ``heal`` clears.
    * ``leader`` — ``pids`` holds the new leader (manual elector flip);
      a non-empty ``scope`` limits the view change to those replicas
      (the partitioned-away rest keeps its old view). On a sharded
      cluster ``rgroup`` names the replication group whose leadership
      moves (``None`` means group 0, the only group when unsharded).
    * ``loss_burst`` / ``dup_burst`` — ``value`` is the probability,
      ``duration`` the burst length.
    * ``latency_spike`` — ``value`` is the extra one-way latency in seconds.
    * ``torn_write`` — ``pids`` holds the target; arms one torn write on
      its stable-storage device (fires at the next crash).
    * ``lost_fsync`` — ``pids`` + ``duration``: the device acknowledges
      fsyncs without persisting for the window.
    * ``disk_stall`` — ``pids`` + ``duration``; ``value`` is the extra
      seconds added to each fsync started in the window.
    * ``corrupt_record`` — ``pids``; ``value`` is the log fraction whose
      durable record gets a flipped bit.
    """

    at: float
    kind: str
    pids: tuple[ProcessId, ...] = ()
    groups: tuple[tuple[ProcessId, ...], ...] = ()
    value: float = 0.0
    duration: float = 0.0
    scope: tuple[ProcessId, ...] = ()
    #: Target replication group for ``leader`` events on sharded clusters.
    rgroup: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigError(f"unknown nemesis event kind {self.kind!r}")

    def describe(self) -> str:
        if self.kind == "leader":
            where = f" on {','.join(self.scope)}" if self.scope else ""
            shard = f" [g{self.rgroup}]" if self.rgroup is not None else ""
            return f"{self.at:.4f}s leader {self.pids[0]}{where}{shard}"
        if self.kind in ("crash", "recover"):
            return f"{self.at:.4f}s {self.kind} {self.pids[0]}"
        if self.kind == "partition":
            sides = " | ".join(",".join(g) for g in self.groups)
            return f"{self.at:.4f}s partition [{sides}]"
        if self.kind == "heal":
            return f"{self.at:.4f}s heal"
        if self.kind == "torn_write":
            return f"{self.at:.4f}s torn_write {self.pids[0]}"
        if self.kind == "lost_fsync":
            return (
                f"{self.at:.4f}s lost_fsync {self.pids[0]} "
                f"duration={self.duration:g}"
            )
        if self.kind == "disk_stall":
            return (
                f"{self.at:.4f}s disk_stall {self.pids[0]} "
                f"duration={self.duration:g} extra={self.value:g}"
            )
        if self.kind == "corrupt_record":
            return f"{self.at:.4f}s corrupt_record {self.pids[0]} at {self.value:g}"
        return (
            f"{self.at:.4f}s {self.kind} value={self.value:g} "
            f"duration={self.duration:g}"
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"at": self.at, "kind": self.kind}
        if self.pids:
            out["pids"] = list(self.pids)
        if self.groups:
            out["groups"] = [list(g) for g in self.groups]
        if self.value:
            out["value"] = self.value
        if self.duration:
            out["duration"] = self.duration
        if self.scope:
            out["scope"] = list(self.scope)
        if self.rgroup is not None:
            out["rgroup"] = self.rgroup
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NemesisEvent":
        rgroup = data.get("rgroup")
        return cls(
            at=float(data["at"]),
            kind=str(data["kind"]),
            pids=tuple(data.get("pids", ())),
            groups=tuple(tuple(g) for g in data.get("groups", ())),
            value=float(data.get("value", 0.0)),
            duration=float(data.get("duration", 0.0)),
            scope=tuple(data.get("scope", ())),
            rgroup=None if rgroup is None else int(rgroup),
        )


@dataclass(frozen=True)
class NemesisSchedule:
    """A seeded fault timeline, ready to compile onto a cluster."""

    seed: int
    horizon: float
    events: tuple[NemesisEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    # -------------------------------------------------------------- compiling
    def compile_onto(self, cluster: "Cluster") -> "FaultSchedule":
        """Apply every event to ``cluster`` via its :class:`FaultSchedule`."""
        from repro.cluster.faults import FaultSchedule

        fs = FaultSchedule(cluster)
        for event in self.events:
            if event.kind == "crash":
                fs.crash(event.pids[0], at=event.at)
            elif event.kind == "recover":
                fs.recover(event.pids[0], at=event.at)
            elif event.kind == "partition":
                fs.partition([list(g) for g in event.groups], at=event.at)
            elif event.kind == "heal":
                fs.heal(at=event.at)
            elif event.kind == "leader":
                fs.switch_leader(
                    event.pids[0], at=event.at, pids=event.scope or None,
                    group=event.rgroup or 0,
                )
            elif event.kind == "loss_burst":
                fs.loss_burst(event.value, at=event.at, duration=event.duration)
            elif event.kind == "dup_burst":
                fs.dup_burst(event.value, at=event.at, duration=event.duration)
            elif event.kind == "latency_spike":
                fs.latency_spike(event.value, at=event.at, duration=event.duration)
            elif event.kind == "torn_write":
                fs.torn_write(event.pids[0], at=event.at)
            elif event.kind == "lost_fsync":
                fs.lost_fsync(event.pids[0], at=event.at, duration=event.duration)
            elif event.kind == "disk_stall":
                fs.disk_stall(
                    event.pids[0], at=event.at,
                    duration=event.duration, extra=event.value,
                )
            elif event.kind == "corrupt_record":
                fs.corrupt_record(event.pids[0], at=event.at, fraction=event.value)
            else:  # pragma: no cover - EVENT_KINDS guards this
                raise ConfigError(f"unknown nemesis event kind {event.kind!r}")
        return fs

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NemesisSchedule":
        return cls(
            seed=int(data["seed"]),
            horizon=float(data["horizon"]),
            events=tuple(NemesisEvent.from_dict(e) for e in data["events"]),
        )

    def with_events(self, events: Iterable[NemesisEvent]) -> "NemesisSchedule":
        return replace(self, events=tuple(events))

    def describe(self) -> str:
        lines = [f"nemesis schedule (seed={self.seed}, horizon={self.horizon:g}s, "
                 f"{len(self.events)} events)"]
        lines.extend(f"  {event.describe()}" for event in self.events)
        return "\n".join(lines)

    def to_script(self) -> str:
        """Emit this schedule as a runnable scripted scenario (the exact
        :class:`FaultSchedule` calls a hand-written repro would make)."""
        lines = [
            "# Scripted repro of a nemesis schedule "
            f"(seed={self.seed}, horizon={self.horizon:g}s).",
            "# Requires a Cluster built with elector='manual'.",
            "from repro.cluster.faults import FaultSchedule",
            "",
            "schedule = FaultSchedule(cluster)",
        ]
        for event in self.events:
            if event.kind == "crash":
                lines.append(f"schedule.crash({event.pids[0]!r}, at={event.at})")
            elif event.kind == "recover":
                lines.append(f"schedule.recover({event.pids[0]!r}, at={event.at})")
            elif event.kind == "partition":
                groups = [list(g) for g in event.groups]
                lines.append(f"schedule.partition({groups!r}, at={event.at})")
            elif event.kind == "heal":
                lines.append(f"schedule.heal(at={event.at})")
            elif event.kind == "leader":
                scope = f", pids={list(event.scope)!r}" if event.scope else ""
                shard = f", group={event.rgroup}" if event.rgroup else ""
                lines.append(
                    f"schedule.switch_leader({event.pids[0]!r}, "
                    f"at={event.at}{scope}{shard})"
                )
            elif event.kind == "loss_burst":
                lines.append(
                    f"schedule.loss_burst({event.value}, at={event.at}, "
                    f"duration={event.duration})"
                )
            elif event.kind == "dup_burst":
                lines.append(
                    f"schedule.dup_burst({event.value}, at={event.at}, "
                    f"duration={event.duration})"
                )
            elif event.kind == "latency_spike":
                lines.append(
                    f"schedule.latency_spike({event.value}, at={event.at}, "
                    f"duration={event.duration})"
                )
            elif event.kind == "torn_write":
                lines.append(
                    f"schedule.torn_write({event.pids[0]!r}, at={event.at})"
                )
            elif event.kind == "lost_fsync":
                lines.append(
                    f"schedule.lost_fsync({event.pids[0]!r}, at={event.at}, "
                    f"duration={event.duration})"
                )
            elif event.kind == "disk_stall":
                lines.append(
                    f"schedule.disk_stall({event.pids[0]!r}, at={event.at}, "
                    f"duration={event.duration}, extra={event.value})"
                )
            elif event.kind == "corrupt_record":
                lines.append(
                    f"schedule.corrupt_record({event.pids[0]!r}, at={event.at}, "
                    f"fraction={event.value})"
                )
        return "\n".join(lines)


# ------------------------------------------------------------------ sharding
def assign_groups(schedule: NemesisSchedule, n_groups: int) -> NemesisSchedule:
    """Retarget a generated schedule's leader switches at replication groups.

    Crashes, partitions and storage faults hit whole processes and need no
    retargeting — one power cut takes out a process's replica of *every*
    group. Leader switches are the one per-group fault: each mid-run switch
    is assigned a group round-robin (so every shard's leadership gets
    exercised, including single-group-leader crashes while the other groups
    keep serving), and the final stabilization switch is fanned out into
    one switch per group so that after the last heal *every* shard has an
    alive leader — otherwise the liveness check could starve a group whose
    round-robin turn never came.
    """
    if n_groups <= 1:
        return schedule
    events = list(schedule.events)
    leader_indexes = [i for i, e in enumerate(events) if e.kind == "leader"]
    if not leader_indexes:
        return schedule
    for turn, index in enumerate(leader_indexes[:-1]):
        events[index] = replace(events[index], rgroup=turn % n_groups)
    final = leader_indexes[-1]
    events[final : final + 1] = [
        replace(events[final], rgroup=group) for group in range(n_groups)
    ]
    return schedule.with_events(events)


# ---------------------------------------------------------------- generation
@dataclass
class _GenState:
    """The generator's model of the cluster while sampling events."""

    replicas: tuple[ProcessId, ...]
    down: set[ProcessId] = field(default_factory=set)
    pending_recover: list[tuple[float, ProcessId]] = field(default_factory=list)
    groups: tuple[tuple[ProcessId, ...], ...] | None = None
    heal_at: float | None = None
    leader: ProcessId = ""
    burst_until: float = 0.0
    #: Replicas whose storage the schedule destroys (corrupt + restart →
    #: fail-stop). Permanently down: never recovered, never re-elected.
    poisoned: set[ProcessId] = field(default_factory=set)
    #: pid -> end of its lying-fsync window. Crashing inside (or right
    #: after) the window may poison the device, which the generator's
    #: alive/down model cannot predict — so crashes steer clear of it.
    lie_until: dict[ProcessId, float] = field(default_factory=dict)

    def advance_to(self, t: float) -> None:
        """Apply planned recoveries/heals that occur before ``t``."""
        keep = []
        for at, pid in self.pending_recover:
            if at <= t:
                self.down.discard(pid)
            else:
                keep.append((at, pid))
        self.pending_recover = keep
        if self.heal_at is not None and self.heal_at <= t:
            self.groups = None
            self.heal_at = None

    def component_of(self, pid: ProcessId) -> tuple[ProcessId, ...]:
        if self.groups is None:
            return self.replicas
        for group in self.groups:
            if pid in group:
                return group
        return self.replicas

    def majority_component(self) -> tuple[ProcessId, ...] | None:
        """Alive pids of a component holding > n/2 *alive* members, if any."""
        need = len(self.replicas) // 2 + 1
        sides = self.groups if self.groups is not None else (self.replicas,)
        for group in sides:
            alive = tuple(p for p in group if p not in self.down)
            if len(alive) >= need:
                return alive
        return None

    def leader_healthy(self) -> bool:
        if self.leader in self.down:
            return False
        majority = self.majority_component()
        return majority is not None and self.leader in majority


def generate_schedule(
    seed: int,
    replicas: Iterable[ProcessId],
    horizon: float = 2.0,
    intensity: float = 1.0,
    allow_majority_loss: bool = False,
    storage: bool = False,
) -> NemesisSchedule:
    """Sample a coherent fault timeline for ``replicas`` from one seed.

    ``intensity`` scales the expected event rate (about two fault injections
    per simulated second at 1.0). ``allow_majority_loss`` permits crash
    bursts that take down a majority — safety must still hold (nothing can
    be committed without a majority), and the final recover-all restores
    liveness.

    ``storage=True`` additionally samples stable-storage nemeses (torn
    writes, lying fsyncs, disk stalls, record rot), carved out of the
    network-burst probability slice so that ``storage=False`` draws an
    identical event sequence to schedules generated before the knob
    existed. A corrupted replica is paired with a crash + restart so its
    replay hits the bad CRC and fail-stops; the generator treats it as
    permanently down (it counts against the crash budget for the rest of
    the run and is never recovered or re-elected).
    """
    pids = tuple(replicas)
    if len(pids) < 2:
        raise ConfigError("nemesis schedules need at least two replicas")
    if horizon <= 0:
        raise ConfigError(f"horizon must be > 0, got {horizon}")
    rng = random.Random(f"{seed}/nemesis")
    state = _GenState(replicas=pids, leader=pids[0])
    events: list[NemesisEvent] = []
    used_crash: set[tuple[ProcessId, float]] = set()
    used_recover: set[tuple[ProcessId, float]] = set()
    max_faults = (len(pids) - 1) // 2

    def emit(event: NemesisEvent) -> None:
        events.append(event)

    def switch_scope(target: ProcessId) -> tuple[ProcessId, ...]:
        """Replicas that can observe a view change to ``target``: during a
        partition, only ``target``'s own component (a cut-off minority keeps
        its stale view — the split-brain shape worth probing)."""
        if state.groups is None:
            return ()
        return state.component_of(target)

    def pick_new_leader(at: float) -> None:
        """If the designated leader is dead or minority-side, flip to an
        alive majority-side replica so progress can resume."""
        majority = state.majority_component()
        if majority is None:
            return
        if state.leader in majority and state.leader not in state.down:
            return
        target = majority[rng.randrange(len(majority))]
        state.leader = target
        emit(
            NemesisEvent(
                at=round(at, 4), kind="leader", pids=(target,),
                scope=switch_scope(target),
            )
        )

    t = 0.02 + rng.random() * 0.05
    mean_gap = 0.5 / max(intensity, 1e-6)
    while t < horizon:
        state.advance_to(t)
        at = round(t, 4)
        choice = rng.random()
        if choice < 0.30:
            # Crash a replica (+ recovery later). Skip pids inside (or just
            # past) a lying-fsync window: such a crash may poison the device
            # and the generator's alive/down model could no longer trust the
            # planned recovery.
            candidates = [
                p for p in pids
                if p not in state.down
                and t > state.lie_until.get(p, -1.0) + 0.05
            ]
            over_budget = len(state.down) >= max_faults
            if candidates and (not over_budget or allow_majority_loss):
                pid = candidates[rng.randrange(len(candidates))]
                if (pid, at) not in used_crash:
                    used_crash.add((pid, at))
                    state.down.add(pid)
                    emit(NemesisEvent(at=at, kind="crash", pids=(pid,)))
                    downtime = 0.1 + rng.random() * min(1.0, horizon / 2)
                    back = round(min(t + downtime, horizon), 4)
                    state.pending_recover.append((back, pid))
                    used_recover.add((pid, back))
                    emit(NemesisEvent(at=back, kind="recover", pids=(pid,)))
                    if pid == state.leader:
                        pick_new_leader(t + 0.01)
        elif choice < 0.55:
            # Partition the replica set in two (clients stay connected).
            # Half the time, deliberately exile the current leader into the
            # smaller side: that is the split-brain shape where a stale
            # leader keeps hearing clients while the majority elects anew.
            if state.groups is None:
                shuffled = list(pids)
                rng.shuffle(shuffled)
                if rng.random() < 0.5 and state.leader in shuffled:
                    shuffled.remove(state.leader)
                    shuffled.insert(0, state.leader)
                    cut = 1 + rng.randrange(max(1, (len(pids) - 1) // 2))
                else:
                    cut = rng.randrange(1, len(pids))
                groups = (tuple(shuffled[:cut]), tuple(shuffled[cut:]))
                state.groups = groups
                emit(NemesisEvent(at=at, kind="partition", groups=groups))
                hold = 0.15 + rng.random() * min(1.0, horizon / 2)
                heal = round(min(t + hold, horizon), 4)
                state.heal_at = heal
                emit(NemesisEvent(at=heal, kind="heal"))
                if not state.leader_healthy():
                    pick_new_leader(t + 0.01)
        elif choice < 0.65:
            # Gratuitous leader switch inside the majority component.
            majority = state.majority_component()
            if majority:
                target = majority[rng.randrange(len(majority))]
                if target != state.leader:
                    state.leader = target
                    emit(
                        NemesisEvent(
                            at=at, kind="leader", pids=(target,),
                            scope=switch_scope(target),
                        )
                    )
        elif storage and choice < 0.80:
            # Stable-storage nemesis — carved out of the burst slice, so a
            # storage=False run draws the exact same rng sequence as before
            # the knob existed (this branch consumes rng only when taken).
            roll = rng.random()
            candidates = [
                p for p in pids if p not in state.down
            ]
            if candidates:
                pid = candidates[rng.randrange(len(candidates))]
                if roll < 0.30:
                    # Arm a torn write and crash so the tear actually
                    # lands; replay truncates the torn tail and the
                    # replica rejoins as usual.
                    crash_at = round(t + 0.01, 4)
                    clean = t > state.lie_until.get(pid, -1.0) + 0.05
                    over_budget = len(state.down) >= max_faults
                    if (
                        clean
                        and (not over_budget or allow_majority_loss)
                        and (pid, crash_at) not in used_crash
                        and crash_at < horizon
                    ):
                        used_crash.add((pid, crash_at))
                        emit(NemesisEvent(at=at, kind="torn_write", pids=(pid,)))
                        state.down.add(pid)
                        emit(NemesisEvent(at=crash_at, kind="crash", pids=(pid,)))
                        downtime = 0.1 + rng.random() * min(1.0, horizon / 2)
                        back = round(min(t + 0.01 + downtime, horizon), 4)
                        state.pending_recover.append((back, pid))
                        used_recover.add((pid, back))
                        emit(NemesisEvent(at=back, kind="recover", pids=(pid,)))
                        if pid == state.leader:
                            pick_new_leader(t + 0.02)
                elif roll < 0.55:
                    # Lying-fsync window: acks without persistence. Benign
                    # on its own; the crash branches steer clear of the
                    # window so the hazard stays latent by construction.
                    duration = round(0.05 + rng.random() * 0.25, 4)
                    state.lie_until[pid] = t + duration
                    emit(
                        NemesisEvent(
                            at=at, kind="lost_fsync", pids=(pid,),
                            duration=duration,
                        )
                    )
                elif roll < 0.80:
                    # Slow disk: every fsync started in the window takes
                    # `extra` longer. Pure latency, never lost data.
                    duration = round(0.1 + rng.random() * 0.4, 4)
                    extra = round((1.0 + rng.random() * 9.0) * 1e-3, 6)
                    emit(
                        NemesisEvent(
                            at=at, kind="disk_stall", pids=(pid,),
                            value=extra, duration=duration,
                        )
                    )
                else:
                    # Rot a mid-log durable record and restart the victim:
                    # replay hits the bad CRC and fail-stops, so the
                    # replica is permanently gone — it burns crash budget
                    # for the rest of the run.
                    crash_at = round(t + 0.01, 4)
                    over_budget = len(state.down) >= max_faults
                    if (
                        not over_budget
                        and len(state.poisoned) < max_faults
                        and (pid, crash_at) not in used_crash
                        and crash_at < horizon
                    ):
                        used_crash.add((pid, crash_at))
                        fraction = round(rng.random() * 0.8, 3)
                        emit(
                            NemesisEvent(
                                at=at, kind="corrupt_record", pids=(pid,),
                                value=fraction,
                            )
                        )
                        state.down.add(pid)
                        state.poisoned.add(pid)
                        emit(NemesisEvent(at=crash_at, kind="crash", pids=(pid,)))
                        back = round(min(t + 0.05, horizon), 4)
                        emit(NemesisEvent(at=back, kind="recover", pids=(pid,)))
                        if pid == state.leader:
                            pick_new_leader(t + 0.02)
        else:
            # Network disturbance burst (loss / duplication / latency).
            if t >= state.burst_until:
                burst_kind = ("loss_burst", "dup_burst", "latency_spike")[
                    rng.randrange(3)
                ]
                duration = round(0.1 + rng.random() * 0.4, 4)
                end = min(t + duration, horizon)
                duration = round(end - t, 4)
                if duration > 0:
                    if burst_kind == "loss_burst":
                        value = round(0.05 + rng.random() * 0.35, 3)
                    elif burst_kind == "dup_burst":
                        value = round(0.1 + rng.random() * 0.5, 3)
                    else:
                        value = round((0.5 + rng.random() * 4.5) * 1e-3, 6)
                    state.burst_until = t + duration
                    emit(
                        NemesisEvent(
                            at=at, kind=burst_kind, value=value, duration=duration
                        )
                    )
        t += rng.expovariate(1.0 / mean_gap) if mean_gap > 0 else horizon

    # Final stabilization: heal, recover everyone, settle leadership. After
    # this point a majority is stable and the liveness invariant applies.
    # Poisoned replicas stay down (their storage is gone; restarting them
    # would only fail-stop again), and pids already scheduled to recover at
    # exactly the horizon are not recovered twice.
    end = round(horizon, 4)
    emit(NemesisEvent(at=end, kind="heal"))
    for pid in pids:
        if pid in state.poisoned or (pid, end) in used_recover:
            continue
        emit(NemesisEvent(at=end, kind="recover", pids=(pid,)))
    state.down = set(state.poisoned)
    state.groups = None
    if state.leader and state.leader not in state.poisoned:
        final_leader = state.leader
    else:
        final_leader = next(p for p in pids if p not in state.poisoned)
    emit(NemesisEvent(at=round(end + 0.01, 4), kind="leader", pids=(final_leader,)))

    events.sort(key=lambda e: (e.at, EVENT_KINDS.index(e.kind)))
    return NemesisSchedule(seed=seed, horizon=horizon, events=tuple(events))
