"""Run one chaos trial: cluster + workload + nemesis schedule + invariants.

A trial builds a manual-elector cluster on the ``flat`` profile (constant
1 ms links, free CPUs — deterministic timing makes found schedules easy to
reason about), compiles a :class:`~repro.chaos.schedule.NemesisSchedule`
onto it, runs past the schedule's horizon plus a liveness grace period,
and then evaluates every invariant in :mod:`repro.chaos.invariants`.

Runtime protocol errors (e.g. :class:`ReplicaLog` detecting an instance
chosen twice with different values) abort the simulation early and are
reported as a ``runtime`` violation alongside the post-mortem invariant
sweep — the simulator's own tripwires and the observational checks
corroborate each other.

``MUTATIONS`` holds deliberate, test-only protocol bugs used to validate
that the invariant layer actually catches real safety violations (and that
the shrinker can minimize the schedules that expose them).
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.chaos.invariants import Violation, check_cluster
from repro.chaos.schedule import NemesisSchedule, assign_groups, generate_schedule
from repro.client.workload import Step, txn_steps
from repro.cluster.harness import Cluster, ClusterSpec
from repro.core.config import ReplicaConfig
from repro.errors import ConfigError, ReproError, SimulationError
from repro.net.profiles import get_profile
from repro.services.kvstore import KVStoreService
from repro.storage import FSYNC_MODES
from repro.types import RequestKind

#: The shared register every workload hammers; the linearizability and
#: convergence checks key off it.
REGISTER_KEY = "x"

PROTOCOLS = ("basic", "xpaxos", "tpaxos")


@dataclass(frozen=True)
class ChaosOptions:
    """Knobs for one chaos trial (shared across a seed sweep)."""

    protocol: str = "basic"
    n_replicas: int = 3
    n_clients: int = 2
    requests_per_client: int = 12
    horizon: float = 2.0
    #: Extra simulated seconds after the final heal for clients to finish.
    liveness_grace: float = 8.0
    intensity: float = 1.0
    allow_majority_loss: bool = False
    tracing: bool = False
    #: Name of a deliberate protocol bug from :data:`MUTATIONS`, or None.
    mutation: str | None = None
    profile: str = "flat"
    client_timeout: float = 0.05
    #: Tight idle-transaction expiry so zombie transactions (abandoned
    #: during partial view changes) are swept before the final invariant
    #: check; the post-run drain must outlast ``1.5 * txn_timeout``.
    txn_timeout: float = 0.5
    #: Stable-storage durability mode for the replicas (see
    #: :data:`repro.storage.FSYNC_MODES`). ``async`` keeps the legacy
    #: write-through device; ``sync``/``group`` model real fsync barriers.
    fsync: str = "async"
    #: Also sample storage nemeses (torn writes, lying fsyncs, disk
    #: stalls, record rot) into the schedule. Requires a real durability
    #: boundary — with ``fsync="async"`` every write is instantly durable
    #: and the nemeses would be inert no-ops.
    storage_faults: bool = False
    #: Replication groups per process (keyspace shards). ``1`` builds the
    #: classic single-log cluster, byte-identical to pre-sharding trials;
    #: ``>1`` builds :class:`~repro.shard.host.GroupHost` processes, adds
    #: spread-key traffic so every shard sees writes, rotates leader
    #: nemeses across groups, and checks the invariants per group.
    groups: int = 1

    def __post_init__(self) -> None:
        if self.groups < 1:
            raise ConfigError(f"need at least one group, got {self.groups}")
        if self.protocol not in PROTOCOLS:
            raise ConfigError(
                f"unknown protocol {self.protocol!r}; known: {PROTOCOLS}"
            )
        if self.mutation is not None and self.mutation not in MUTATIONS:
            raise ConfigError(
                f"unknown mutation {self.mutation!r}; known: {sorted(MUTATIONS)}"
            )
        if self.fsync not in FSYNC_MODES:
            raise ConfigError(
                f"unknown fsync mode {self.fsync!r}; known: {FSYNC_MODES}"
            )
        if self.storage_faults and self.fsync == "async":
            raise ConfigError(
                "storage_faults requires fsync='sync' or 'group' "
                "(async is write-through: storage nemeses would be no-ops)"
            )
        if self.mutation == "skip-fsync" and self.fsync == "async":
            raise ConfigError(
                "the skip-fsync mutation requires fsync='sync' or 'group' "
                "(with async there is no fsync to skip)"
            )

    @property
    def deadline(self) -> float:
        return self.horizon + self.liveness_grace


@dataclass
class ChaosResult:
    """Outcome of one trial. ``ok`` iff no invariant was violated."""

    seed: int
    options: ChaosOptions
    schedule: NemesisSchedule
    violations: list[Violation]
    sim_time: float
    completed_requests: int
    counters: dict[str, int] = field(default_factory=dict)
    #: Kept only when the caller asked for it (waterfall rendering, tests).
    cluster: Cluster | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        """Deterministic, JSON-ready summary (no host wall-time anywhere)."""
        return {
            "seed": self.seed,
            "protocol": self.options.protocol,
            "ok": self.ok,
            "events": len(self.schedule),
            "sim_time": round(self.sim_time, 6),
            "completed_requests": self.completed_requests,
            "violations": [v.to_dict() for v in self.violations],
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
        }


# ------------------------------------------------------------------ workloads
def build_workload(options: ChaosOptions, seed: int) -> list[list[Step]]:
    """Seeded per-client step lists over the shared register.

    Writes carry globally unique values ``"<pid>:<i>"`` so the
    linearizability checker can tell every write apart. The basic and
    X-Paxos protocols mix reads and writes (reads take the X-Paxos path
    only when the cluster enables it); T-Paxos wraps ops in transactions.
    Seeded think-time gaps pace each client so its traffic spans the whole
    fault horizon — a fault injected at any point lands on live requests.

    On a sharded cluster every other write targets a per-client spread key
    instead of the shared register, so traffic lands on multiple groups
    (the linearizability checker reads only the register's history and is
    unaffected). The branch is guarded by ``groups > 1``: single-group
    workloads draw the exact same RNG sequence as before sharding existed.
    """
    mean_gap = options.horizon / max(options.requests_per_client, 1)
    all_steps: list[list[Step]] = []
    for index in range(options.n_clients):
        pid = f"c{index}"
        rng = random.Random(f"{seed}/workload/{pid}")

        def gap() -> float:
            return round(rng.uniform(0.2, 1.2) * mean_gap, 4)

        steps: list[Step] = []
        for i in range(options.requests_per_client):
            if options.protocol == "tpaxos" and rng.random() < 0.7:
                # Transactions work a per-client key: chaos probes protocol
                # faults, not 2PL lock contention (two clients hammering one
                # key just abort each other into a livelock).
                ops = [
                    ("put", f"t:{pid}", f"{pid}:{i}:a"),
                    ("put", f"t:{pid}", f"{pid}:{i}:b"),
                ]
                steps.append(dataclasses.replace(txn_steps(1, ops)[0], gap=gap()))
            elif rng.random() < 0.4:
                steps.append(
                    Step(
                        requests=((RequestKind.READ, ("get", REGISTER_KEY)),),
                        label="read", gap=gap(),
                    )
                )
            else:
                key = REGISTER_KEY
                if options.groups > 1 and i % 2:
                    key = f"s:{pid}:{i}"
                put = ("put", key, f"{pid}:{i}")
                steps.append(
                    Step(
                        requests=((RequestKind.WRITE, put),),
                        label="write", gap=gap(),
                    )
                )
        all_steps.append(steps)
    return all_steps


# ------------------------------------------------------------------ mutations
class _MinorityAcceptConfig(ReplicaConfig):
    """Deliberately broken quorum arithmetic: *one* accept "is" a majority.

    A leader commits after its own accept alone, so a partitioned minority
    leader happily chooses values a concurrent majority never saw —
    classic split-brain. Test-only; exists so the chaos suite can prove the
    invariant layer catches real agreement violations."""

    @property
    def majority(self) -> int:  # type: ignore[override]
        return 1


def _mutate_minority_accept(cluster: Cluster) -> None:
    fields = {
        f.name: getattr(cluster.config, f.name)
        for f in dataclasses.fields(ReplicaConfig)
    }
    broken = _MinorityAcceptConfig(**fields)
    for replica in cluster.replicas.values():
        replica.config = broken
        # Sharded hosts do quorum math inside each ReplicationGroup.
        for group in getattr(replica, "groups", {}).values():
            group.config = broken


def _mutate_skip_fsync(cluster: Cluster) -> None:
    """Ack client writes without waiting for (or ever issuing) an fsync.

    The classic "it's in the page cache, ship it" durability bug: every
    barrier completes immediately while the WAL records rot in the device
    cache. Any crash then strands acknowledged writes below a majority of
    durable copies — which is exactly what the ``acked_durability``
    invariant asserts cannot happen. Test-only."""
    for replica in cluster.replicas.values():
        # ``store`` is a StableStore (standalone replica) or the shared
        # StoragePump (sharded host); either way the pump is what issues
        # fsyncs, so neuter it there and short-circuit every barrier.
        store = replica.store
        pump = getattr(store, "pump", store)
        store.flush = lambda callback: callback()  # type: ignore[method-assign]
        pump.flush = lambda callback: callback()  # type: ignore[method-assign]
        pump._start_fsync = lambda: None  # type: ignore[method-assign]


#: name -> callable(cluster) applied after construction, before start.
MUTATIONS: Mapping[str, Callable[[Cluster], None]] = {
    "minority-accept": _mutate_minority_accept,
    "skip-fsync": _mutate_skip_fsync,
}


# -------------------------------------------------------------------- running
def build_cluster(options: ChaosOptions, seed: int) -> Cluster:
    """Construct (but do not start) the cluster for one trial."""
    spec = ClusterSpec(
        profile=get_profile(options.profile),
        n_replicas=options.n_replicas,
        seed=seed,
        xpaxos_reads=options.protocol == "xpaxos",
        tpaxos=options.protocol == "tpaxos",
        client_timeout=options.client_timeout,
        txn_timeout=options.txn_timeout,
        retry_aborted=options.protocol == "tpaxos",
        elector="manual",
        tracing=options.tracing,
        connection_scaling=False,
        fsync=options.fsync,
        groups=options.groups,
        # Fold committed rids into checkpoints/state transfer so the
        # acked-durability check can account for compacted WAL prefixes.
        # Only wired up when the durability boundary is real: with async
        # fsync the trial stays byte-identical to pre-storage chaos runs.
        track_commits=options.fsync != "async",
    )
    cluster = Cluster(
        spec, build_workload(options, seed), service_factory=KVStoreService
    )
    if options.mutation is not None:
        MUTATIONS[options.mutation](cluster)
    return cluster


def run_with_schedule(
    schedule: NemesisSchedule,
    options: ChaosOptions,
    keep_cluster: bool = False,
) -> ChaosResult:
    """Execute one trial under an explicit (possibly shrunk) schedule."""
    cluster = build_cluster(options, schedule.seed)
    cluster.start()
    schedule.compile_onto(cluster)

    runtime_violations: list[Violation] = []
    try:
        cluster.run(max_time=options.deadline)
        # Long enough for Chosen broadcasts to land everywhere AND for the
        # idle-transaction sweep (worst case 1.5 * txn_timeout) to clear
        # zombies before the convergence check.
        cluster.drain(grace=max(0.5, 1.5 * options.txn_timeout + 0.2))
    except SimulationError:
        # Clients still unfinished at the deadline; the liveness check
        # below turns this into a proper violation with per-client detail.
        pass
    except ReproError as exc:
        # A protocol tripwire fired mid-run (e.g. conflicting chosen
        # values). Record it and post-mortem the frozen state.
        runtime_violations.append(
            Violation(
                "runtime",
                f"{type(exc).__name__}: {exc}",
                data={"exception": type(exc).__name__},
            )
        )

    violations = runtime_violations + check_cluster(
        cluster,
        register_key=REGISTER_KEY,
        register_initial=None,
        liveness_deadline=options.deadline,
    )
    # A runtime abort freezes clients mid-flight; the interesting signal is
    # the tripwire itself, not the liveness fallout it causes.
    if runtime_violations:
        violations = [v for v in violations if v.invariant != "liveness"]

    completed = sum(c.completed_requests for c in cluster.clients)
    counters = {
        name: value
        for name, value in cluster.metrics.counters().items()
        if name.startswith(("fault.", "client.retransmit", "net.drop", "net.dup"))
        or ".storage." in name
    }
    return ChaosResult(
        seed=schedule.seed,
        options=options,
        schedule=schedule,
        violations=violations,
        sim_time=cluster.kernel.now,
        completed_requests=completed,
        counters=counters,
        cluster=cluster if keep_cluster else None,
    )


def run_chaos(
    seed: int, options: ChaosOptions, keep_cluster: bool = False
) -> ChaosResult:
    """Generate the seed's nemesis schedule and run the trial.

    Sharded trials (``options.groups > 1``) post-process the schedule with
    :func:`~repro.chaos.schedule.assign_groups`, which rotates leader
    switches across replication groups — the generated timeline itself is
    untouched, so a sharded sweep stays event-for-event comparable to the
    single-group sweep of the same seed.
    """
    cluster_pids = tuple(f"r{i}" for i in range(options.n_replicas))
    schedule = generate_schedule(
        seed,
        cluster_pids,
        horizon=options.horizon,
        intensity=options.intensity,
        allow_majority_loss=options.allow_majority_loss,
        storage=options.storage_faults,
    )
    if options.groups > 1:
        schedule = assign_groups(schedule, options.groups)
    return run_with_schedule(schedule, options, keep_cluster=keep_cluster)
