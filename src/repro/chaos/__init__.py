"""Chaos engine: randomized fault schedules, safety invariants, shrinking.

See :mod:`repro.chaos.schedule` (seeded nemesis timelines),
:mod:`repro.chaos.invariants` (the safety/liveness properties checked),
:mod:`repro.chaos.runner` (one trial end to end),
:mod:`repro.chaos.shrink` (failing-schedule minimization) and
:mod:`repro.chaos.report` (deterministic summaries). Driven by
``repro chaos`` (:mod:`repro.cli`) and ``docs/robustness.md``.
"""

from repro.chaos.invariants import INVARIANTS, Violation, check_cluster
from repro.chaos.report import dump_summary, render_report, to_summary
from repro.chaos.runner import (
    MUTATIONS,
    PROTOCOLS,
    ChaosOptions,
    ChaosResult,
    run_chaos,
    run_with_schedule,
)
from repro.chaos.schedule import (
    NemesisEvent,
    NemesisSchedule,
    generate_schedule,
)
from repro.chaos.shrink import ShrinkOutcome, shrink

__all__ = [
    "INVARIANTS",
    "MUTATIONS",
    "PROTOCOLS",
    "ChaosOptions",
    "ChaosResult",
    "NemesisEvent",
    "NemesisSchedule",
    "ShrinkOutcome",
    "Violation",
    "check_cluster",
    "dump_summary",
    "generate_schedule",
    "render_report",
    "run_chaos",
    "run_with_schedule",
    "shrink",
    "to_summary",
]
