"""Safety and liveness invariants checked after (and during) a chaos run.

All checks are *observational*: they read replica snapshots
(:meth:`repro.core.replica.Replica.invariant_snapshot`) and client request
records, and never mutate protocol state. Each violated property yields a
:class:`Violation` naming the invariant and carrying enough detail to
reproduce and debug it.

Invariants (the paper's correctness claims under the crash-recovery model
of §3.1, plus the X-/T-Paxos extensions of §3.4–3.6):

* ``log_agreement`` — no two replicas choose different values for the same
  consensus instance (agreement, the core Paxos safety property).
* ``at_most_once`` — no request id occupies more than one chosen instance
  on any replica (the ExecutedTable + dedup machinery works).
* ``prefix_consistency`` — each replica's applied/checkpoint/compaction
  bookkeeping is internally consistent: ``compacted_to <= checkpoint <=
  applied <= frontier``.
* ``state_convergence`` — alive replicas that applied the same prefix have
  byte-identical service state fingerprints (deterministic re-execution of
  the chosen sequence; the paper's replicated-state-machine guarantee).
* ``txn_atomicity`` — every chosen T-Paxos transaction bundle is whole:
  one txn id, ops numbered ``0..n-1`` in order, terminated by a
  ``TXN_COMMIT`` whose ``txn_seq`` equals the op count (no torn suffix
  committed after a leader switch, §3.6).
* ``cross_group_at_most_once`` — sharded clusters only: no request id is
  chosen by more than one replication group (the deterministic router
  really does send every retransmission of a request to the same shard).
* ``linearizability`` — reads and writes of the designated register form a
  linearizable history (covers X-Paxos read freshness, §3.4: a read "must
  reflect the latest update").
* ``acked_durability`` — every client-acknowledged write survives on
  stable storage: its request id is covered by the durable WAL records
  (or checkpoint rid-folds) of the replicas whose storage is intact.
  Enforced only while at least a majority of devices are intact — below
  that the system is allowed to have lost data (the paper's crash-
  recovery model assumes a majority of stable stores survive).
* ``liveness`` — once faults stop and a majority is stable, every client
  finishes its workload before the grace deadline.

On a sharded cluster every replication group is its own consensus
instance: the per-log invariants run once per group over that group's
snapshots (violations are tagged ``[g<N>]``), while durability is judged
per *device* — all of one process's groups share one platter, so a rid is
safe if any of the process's group WALs holds it durably.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field, replace
from typing import Any, TYPE_CHECKING

from repro.analysis.linearizability import check_register, history_from_clients
from repro.types import ReplyStatus, RequestKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.harness import Cluster

#: Names of every invariant this module can report, in check order.
INVARIANTS = (
    "log_agreement",
    "at_most_once",
    "prefix_consistency",
    "state_convergence",
    "txn_atomicity",
    "cross_group_at_most_once",
    "linearizability",
    "acked_durability",
    "liveness",
    "runtime",
)


@dataclass(frozen=True, slots=True)
class Violation:
    """One invariant violation with human-readable detail."""

    invariant: str
    detail: str
    data: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "data": {k: self.data[k] for k in sorted(self.data)},
        }


# ------------------------------------------------------------------ per-check
def check_log_agreement(snapshots: Sequence[Mapping[str, Any]]) -> list[Violation]:
    """No two replicas may choose different values for the same instance.

    Logs are stable storage, so crashed replicas participate too."""
    violations: list[Violation] = []
    by_instance: dict[int, dict[str, Any]] = {}
    for snap in snapshots:
        for instance, proposal in snap["chosen"]:
            seen = by_instance.setdefault(instance, {})
            seen[str(proposal.primary_rid)] = seen.get(
                str(proposal.primary_rid), []
            ) + [snap["pid"]]
    for instance in sorted(by_instance):
        rids = by_instance[instance]
        if len(rids) > 1:
            detail = "; ".join(
                f"{rid} on {','.join(pids)}" for rid, pids in sorted(rids.items())
            )
            violations.append(
                Violation(
                    "log_agreement",
                    f"instance {instance} chosen with different values: {detail}",
                    data={"instance": instance, "values": dict(sorted(rids.items()))},
                )
            )
    return violations


def check_at_most_once(snapshots: Sequence[Mapping[str, Any]]) -> list[Violation]:
    """No request id may occupy more than one chosen instance anywhere."""
    violations: list[Violation] = []
    # rid -> {instance, ...} across every replica's retained chosen log.
    instances_by_rid: dict[str, set[int]] = {}
    for snap in snapshots:
        for instance, proposal in snap["chosen"]:
            for request in proposal.requests:
                instances_by_rid.setdefault(str(request.rid), set()).add(instance)
    for rid in sorted(instances_by_rid):
        instances = instances_by_rid[rid]
        if len(instances) > 1:
            violations.append(
                Violation(
                    "at_most_once",
                    f"request {rid} committed in {len(instances)} instances: "
                    f"{sorted(instances)}",
                    data={"rid": rid, "instances": sorted(instances)},
                )
            )
    return violations


def check_prefix_consistency(
    snapshots: Sequence[Mapping[str, Any]],
) -> list[Violation]:
    """Per-replica bookkeeping: compacted <= checkpoint <= applied <= frontier,
    and no retained chosen entry at or below the compaction point."""
    violations: list[Violation] = []
    for snap in snapshots:
        pid = snap["pid"]
        compacted = snap["compacted_to"]
        checkpoint = snap["checkpoint_instance"]
        applied = snap["applied"]
        frontier = snap["frontier"]
        if not compacted <= applied <= frontier:
            violations.append(
                Violation(
                    "prefix_consistency",
                    f"{pid}: compacted_to={compacted} applied={applied} "
                    f"frontier={frontier} out of order",
                    data={"pid": pid, "compacted_to": compacted,
                          "applied": applied, "frontier": frontier},
                )
            )
        if checkpoint > applied:
            violations.append(
                Violation(
                    "prefix_consistency",
                    f"{pid}: checkpoint at {checkpoint} ahead of applied={applied}",
                    data={"pid": pid, "checkpoint": checkpoint, "applied": applied},
                )
            )
        stale = [i for i, _ in snap["chosen"] if i <= compacted]
        if stale:
            violations.append(
                Violation(
                    "prefix_consistency",
                    f"{pid}: retained chosen entries at/below compaction point "
                    f"{compacted}: {stale}",
                    data={"pid": pid, "compacted_to": compacted, "stale": stale},
                )
            )
    return violations


def check_state_convergence(
    snapshots: Sequence[Mapping[str, Any]],
) -> list[Violation]:
    """Alive replicas that applied the same prefix must have identical
    service-state fingerprints (applied state is volatile, so crashed
    replicas are excluded until they recover)."""
    violations: list[Violation] = []
    by_applied: dict[int, dict[str, list[str]]] = {}
    for snap in snapshots:
        if not snap["alive"]:
            continue
        fingerprints = by_applied.setdefault(snap["applied"], {})
        fingerprints.setdefault(str(snap["fingerprint"]), []).append(snap["pid"])
    for applied in sorted(by_applied):
        fingerprints = by_applied[applied]
        if len(fingerprints) > 1:
            detail = "; ".join(
                f"{fp[:12]}… on {','.join(pids)}"
                for fp, pids in sorted(fingerprints.items())
            )
            violations.append(
                Violation(
                    "state_convergence",
                    f"replicas at applied={applied} diverge: {detail}",
                    data={"applied": applied,
                          "fingerprints": {fp: pids for fp, pids
                                           in sorted(fingerprints.items())}},
                )
            )
    return violations


def check_txn_atomicity(snapshots: Sequence[Mapping[str, Any]]) -> list[Violation]:
    """Every chosen transactional proposal must be a whole transaction."""
    violations: list[Violation] = []
    reported: set[tuple[str, int]] = set()
    for snap in snapshots:
        for instance, proposal in snap["chosen"]:
            requests = proposal.requests
            if not any(r.txn is not None for r in requests):
                continue
            key = (snap["pid"], instance)
            problem = _torn_txn(requests)
            if problem and key not in reported:
                reported.add(key)
                violations.append(
                    Violation(
                        "txn_atomicity",
                        f"{snap['pid']} instance {instance}: {problem}",
                        data={"pid": snap["pid"], "instance": instance,
                              "rids": [str(r.rid) for r in requests]},
                    )
                )
    return violations


def _torn_txn(requests: Sequence[Any]) -> str | None:
    """Why this chosen request bundle is not a whole transaction, or None."""
    txn_ids = {r.txn for r in requests}
    if len(txn_ids) != 1 or None in txn_ids:
        return f"mixed transaction ids {sorted(str(t) for t in txn_ids)}"
    commit = requests[-1]
    if commit.kind is not RequestKind.TXN_COMMIT:
        return f"bundle does not end in TXN_COMMIT (ends {commit.kind.value})"
    ops = requests[:-1]
    if any(r.kind is not RequestKind.TXN_OP for r in ops):
        return "non-TXN_OP request inside a transaction bundle"
    if commit.txn_seq != len(ops):
        return (
            f"torn suffix: commit claims {commit.txn_seq} ops, "
            f"bundle carries {len(ops)}"
        )
    if [r.txn_seq for r in ops] != list(range(len(ops))):
        return f"ops out of order: {[r.txn_seq for r in ops]}"
    return None


def check_cross_group_at_most_once(
    snapshots_by_group: Mapping[int, Sequence[Mapping[str, Any]]],
) -> list[Violation]:
    """No request id may be chosen by more than one replication group.

    Within a group the ExecutedTable dedups retransmissions; *across*
    groups the only guard is the router's determinism. A rid chosen in two
    groups means two processes disagreed about where a request lives —
    and its op would execute twice in two state machines."""
    violations: list[Violation] = []
    groups_by_rid: dict[str, set[int]] = {}
    for group_id, snapshots in snapshots_by_group.items():
        for snap in snapshots:
            for _instance, proposal in snap["chosen"]:
                for request in proposal.requests:
                    groups_by_rid.setdefault(str(request.rid), set()).add(group_id)
    for rid in sorted(groups_by_rid):
        groups = groups_by_rid[rid]
        if len(groups) > 1:
            violations.append(
                Violation(
                    "cross_group_at_most_once",
                    f"request {rid} chosen by {len(groups)} replication "
                    f"groups: {sorted(groups)}",
                    data={"rid": rid, "groups": sorted(groups)},
                )
            )
    return violations


def check_linearizability(
    clients: Iterable, key: Any, initial: Any = None
) -> list[Violation]:
    """The designated register's completed reads/writes must linearize.

    Subsumes X-Paxos read freshness: a stale confirmed read shows up as a
    read that cannot be ordered after the write it missed."""
    history = history_from_clients(clients, key)
    if check_register(history, initial=initial):
        return []
    ops = sorted(history, key=lambda op: (op.invoked, op.completed))
    return [
        Violation(
            "linearizability",
            f"history of {len(history)} ops on register {key!r} has no legal "
            f"linearization",
            data={
                "key": key,
                "ops": [
                    f"{op.kind}({op.value!r}) @ [{op.invoked:.4f}, "
                    f"{op.completed:.4f}]"
                    for op in ops
                ],
            },
        )
    ]


def check_acked_durability(
    clients: Iterable,
    snapshots: Sequence[Mapping[str, Any]],
    majority: int,
) -> list[Violation]:
    """Every acknowledged write must be durable on some intact device.

    The durability barriers guarantee that an acked write has its accept
    record fsynced on a majority of replicas, so as long as at least
    ``majority`` devices are intact, *some* intact replica still holds
    every acked request id — in its durable WAL tail or folded into its
    checkpoint. With fewer intact devices the check stands down: losing
    data beyond the fault model's budget is permitted (and unavoidable).
    """
    intact = [snap for snap in snapshots if snap["storage_intact"]]
    if len(intact) < majority:
        return []
    covered: set[str] = set()
    for snap in intact:
        covered.update(snap["durable_rids"])
    violations: list[Violation] = []
    for client in clients:
        for record in client.request_records():
            if record.kind not in (RequestKind.WRITE, RequestKind.TXN_COMMIT):
                continue
            if record.completed_at is None or record.status is not ReplyStatus.OK:
                continue
            rid = str(record.rid)
            if rid not in covered:
                violations.append(
                    Violation(
                        "acked_durability",
                        f"acked {record.kind.value} {rid} (client {client.pid}, "
                        f"completed t={record.completed_at:.4f}s) is on no "
                        f"intact stable store "
                        f"({len(intact)}/{len(snapshots)} devices intact)",
                        data={
                            "rid": rid,
                            "client": client.pid,
                            "intact": [snap["pid"] for snap in intact],
                        },
                    )
                )
    return violations


def check_liveness(clients: Iterable, deadline: float) -> list[Violation]:
    """After faults stop, every client must finish by ``deadline``."""
    violations: list[Violation] = []
    for client in clients:
        if not client.done:
            pending = sum(
                1
                for record in client.request_records()
                if record.completed_at is None
            )
            violations.append(
                Violation(
                    "liveness",
                    f"client {client.pid} not done by t={deadline:g}s "
                    f"({client.completed_requests} requests completed, "
                    f"{pending} in flight)",
                    data={"pid": client.pid, "deadline": deadline,
                          "completed": client.completed_requests},
                )
            )
    return violations


# --------------------------------------------------------------------- driver
def check_cluster(
    cluster: "Cluster",
    register_key: Any = None,
    register_initial: Any = None,
    liveness_deadline: float | None = None,
) -> list[Violation]:
    """Run every applicable invariant against ``cluster``'s current state.

    ``register_key`` enables the linearizability check for that key;
    ``liveness_deadline`` enables the liveness check (the caller decides
    when the post-heal grace period has expired).

    Sharded clusters report one snapshot per (process, group) pair; the
    per-log invariants run within each group and their violations carry a
    ``[g<N>]`` tag. Single-group clusters take the exact legacy path.
    """
    by_group: dict[int, list[Mapping[str, Any]]] = {}
    for replica in cluster.replicas.values():
        if hasattr(replica, "invariant_snapshots"):
            group_snaps = replica.invariant_snapshots()
        else:
            group_snaps = [replica.invariant_snapshot()]
        for snap in group_snaps:
            by_group.setdefault(snap.get("group", 0), []).append(snap)
    sharded = len(by_group) > 1

    violations: list[Violation] = []
    for group_id in sorted(by_group):
        snapshots = by_group[group_id]
        group_violations: list[Violation] = []
        group_violations.extend(check_log_agreement(snapshots))
        group_violations.extend(check_at_most_once(snapshots))
        group_violations.extend(check_prefix_consistency(snapshots))
        group_violations.extend(check_state_convergence(snapshots))
        group_violations.extend(check_txn_atomicity(snapshots))
        if sharded:
            group_violations = [
                replace(
                    v,
                    detail=f"[g{group_id}] {v.detail}",
                    data={**v.data, "rgroup": group_id},
                )
                for v in group_violations
            ]
        violations.extend(group_violations)
    if sharded:
        violations.extend(check_cross_group_at_most_once(by_group))
    if register_key is not None:
        violations.extend(
            check_linearizability(
                cluster.clients, register_key, initial=register_initial
            )
        )
    # Durability accounting needs the checkpoint rid-fold, which is only
    # recorded when the cluster runs with track_commits (chaos trials with
    # a real fsync barrier enable it; write-through runs would see false
    # positives for rids compacted out of the WAL).
    if cluster.config.track_commits:
        violations.extend(
            check_acked_durability(
                cluster.clients,
                _device_snapshots(by_group) if sharded else by_group[0],
                cluster.config.majority,
            )
        )
    if liveness_deadline is not None:
        violations.extend(check_liveness(cluster.clients, liveness_deadline))
    return violations


def _device_snapshots(
    by_group: Mapping[int, Sequence[Mapping[str, Any]]],
) -> list[dict[str, Any]]:
    """Collapse per-(process, group) snapshots to one per *device*.

    All of a process's groups share one simulated platter, so intactness
    is a property of the process and a rid is durable on the device if any
    group's WAL (or checkpoint fold) holds it."""
    devices: dict[str, dict[str, Any]] = {}
    for snapshots in by_group.values():
        for snap in snapshots:
            device = devices.setdefault(
                snap["pid"],
                {"pid": snap["pid"], "storage_intact": True, "durable_rids": set()},
            )
            device["storage_intact"] &= bool(snap["storage_intact"])
            device["durable_rids"] |= set(snap["durable_rids"])
    return [devices[pid] for pid in sorted(devices)]
